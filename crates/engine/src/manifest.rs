//! Batch-job discovery: a fixture directory of `.cnf` files, or a manifest
//! file describing one job per line.
//!
//! # Manifest format
//!
//! ```text
//! # one job per line: <path> [key=value ...]
//! uf20-01.cnf
//! uf20-02.cnf target=superconducting
//! uf20-03.cnf target=simulator
//! hard/uf50-01.cnf check=true compression=false gamma=0.9 beta=0.2
//! ```
//!
//! Recognized keys: `target` (any backend-registry name or alias —
//! `fpqa`, `superconducting`/`sc`, `simulator`/`sim`), `check`,
//! `compression`, `parallel-shuttling`, `dsatur` (booleans), `gamma`,
//! `beta`, `ccz-fidelity` (floats). Unset keys inherit the batch defaults
//! passed on the command line. Relative paths resolve against the
//! manifest's directory; blank lines and `#` comments are skipped.

use crate::job::{CompileJob, JobOptions, JobSource, Target};
use std::path::Path;

/// Expands `path` into jobs: every `*.cnf` / `*.dimacs` file (sorted by
/// name) when `path` is a directory, or one job per manifest line when it
/// is a file. `default_target` and `defaults` seed every job's settings.
pub fn discover_jobs(
    path: &Path,
    default_target: Target,
    defaults: &JobOptions,
) -> Result<Vec<CompileJob>, String> {
    if path.is_dir() {
        discover_dir(path, default_target, defaults)
    } else if path.is_file() {
        parse_manifest(path, default_target, defaults)
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

fn discover_dir(
    dir: &Path,
    target: Target,
    defaults: &JobOptions,
) -> Result<Vec<CompileJob>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|x| x.to_str())
                .is_some_and(|x| x == "cnf" || x == "dimacs")
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no .cnf or .dimacs files found", dir.display()));
    }
    Ok(paths
        .into_iter()
        .map(|p| CompileJob {
            source: JobSource::Path(p),
            target: target.clone(),
            options: defaults.clone(),
        })
        .collect())
}

fn parse_manifest(
    manifest: &Path,
    default_target: Target,
    defaults: &JobOptions,
) -> Result<Vec<CompileJob>, String> {
    let text = std::fs::read_to_string(manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let base = manifest.parent().unwrap_or(Path::new("."));
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| format!("{} line {}: {msg}", manifest.display(), lineno + 1);
        let mut fields = line.split_whitespace();
        let file = fields.next().expect("non-empty line has a first token");
        let mut target = default_target.clone();
        let mut options = defaults.clone();
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| at(format!("expected key=value, got `{field}`")))?;
            let parse_bool = |v: &str| -> Result<bool, String> {
                v.parse()
                    .map_err(|_| at(format!("bad boolean `{v}` for {key}")))
            };
            let parse_f64 = |v: &str| -> Result<f64, String> {
                v.parse()
                    .map_err(|_| at(format!("bad number `{v}` for {key}")))
            };
            match key {
                "target" => target = Target::parse(value).map_err(at)?,
                "check" => options.check = parse_bool(value)?,
                "compression" => options.compression = parse_bool(value)?,
                "parallel-shuttling" => options.parallel_shuttling = parse_bool(value)?,
                "dsatur" => options.dsatur = parse_bool(value)?,
                "gamma" => options.gamma = parse_f64(value)?,
                "beta" => options.beta = parse_f64(value)?,
                "ccz-fidelity" => options.ccz_fidelity = Some(parse_f64(value)?),
                other => return Err(at(format!("unknown key `{other}`"))),
            }
        }
        let path = base.join(file);
        jobs.push(CompileJob {
            source: JobSource::Path(path),
            target,
            options,
        });
    }
    if jobs.is_empty() {
        return Err(format!("{}: manifest lists no jobs", manifest.display()));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("weaver-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn directory_discovery_sorts_by_name() {
        let dir = scratch_dir("dir");
        for name in ["b.cnf", "a.cnf", "ignored.txt", "c.dimacs"] {
            std::fs::write(dir.join(name), "p cnf 1 1\n1 0\n").unwrap();
        }
        let jobs = discover_jobs(&dir, Target::Fpqa, &JobOptions::default()).unwrap();
        let names: Vec<String> = jobs
            .iter()
            .map(|j| match &j.source {
                JobSource::Path(p) => p.file_name().unwrap().to_string_lossy().into_owned(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["a.cnf", "b.cnf", "c.dimacs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_lines_override_defaults() {
        let dir = scratch_dir("manifest");
        let manifest = dir.join("suite.manifest");
        std::fs::write(
            &manifest,
            "# suite\n\
             one.cnf\n\
             two.cnf target=sc check=true gamma=0.9\n\
             sub/three.cnf compression=false ccz-fidelity=0.95\n\
             four.cnf target=sim\n",
        )
        .unwrap();
        let jobs = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].target, Target::Fpqa);
        assert_eq!(jobs[1].target, Target::Superconducting);
        assert!(jobs[1].options.check);
        assert_eq!(jobs[1].options.gamma, 0.9);
        assert!(!jobs[2].options.compression);
        assert_eq!(jobs[2].options.ccz_fidelity, Some(0.95));
        assert_eq!(jobs[3].target, Target::Simulator);
        assert!(matches!(
            &jobs[2].source,
            JobSource::Path(p) if p.ends_with("sub/three.cnf")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_errors_carry_line_numbers() {
        let dir = scratch_dir("badmanifest");
        let manifest = dir.join("bad.manifest");
        std::fs::write(&manifest, "ok.cnf\nbad.cnf target=ion-trap\n").unwrap();
        let err = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_path_is_an_error() {
        let err = discover_jobs(
            Path::new("/definitely/not/here"),
            Target::Fpqa,
            &JobOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("no such file"));
    }
}
