//! Batch-job discovery: a fixture directory of workload files, or a
//! manifest file describing one job per line.
//!
//! # Manifest format
//!
//! ```text
//! # one job per line: <path> [key=value ...]
//! uf20-01.cnf
//! uf20-02.cnf target=superconducting
//! weighted.wcnf target=simulator
//! triangle.mc frontend=maxcut
//! bell.wq target=sc
//! hard/uf50-01.cnf check=true compression=false gamma=0.9 beta=0.2
//! ```
//!
//! Recognized keys: `target` (any backend-registry name or alias —
//! `fpqa`, `superconducting`/`sc`, `simulator`/`sim`), `frontend` (any
//! frontend-registry name or alias — `dimacs`/`wcnf`, `maxcut`/`mc`,
//! `wqasm`/`wq`; unset infers from the file extension, then content),
//! `check`, `compression`, `parallel-shuttling`, `dsatur` (booleans),
//! `gamma`, `beta`, `ccz-fidelity` (floats). Unset keys inherit the batch
//! defaults passed on the command line. Relative paths resolve against the
//! manifest's directory; blank lines and `#` comments are skipped.

use crate::job::{CompileJob, JobOptions, JobSource, Target};
use std::path::Path;
use weaver_core::{FrontendRegistry, WorkloadKind};

/// Expands `path` into jobs: every formula-format workload file (sorted by
/// name; the extensions every MAX-SAT-producing frontend registers —
/// `.cnf`, `.dimacs`, `.wcnf`, `.mc`, `.graph`) when `path` is a
/// directory, or one job per manifest line when it is a file.
/// `default_target` and `defaults` seed every job's settings.
///
/// Circuit files (`.wq`) are deliberately excluded from directory
/// discovery: a circuit is only compilable on circuit-capable targets, so
/// sweeping one up under a formula-only default target (`fpqa`) would fail
/// the batch. Circuits join batches through explicit manifest lines with a
/// matching `target=`.
pub fn discover_jobs(
    path: &Path,
    default_target: Target,
    defaults: &JobOptions,
) -> Result<Vec<CompileJob>, String> {
    if path.is_dir() {
        discover_dir(path, default_target, defaults)
    } else if path.is_file() {
        parse_manifest(path, default_target, defaults)
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

fn discover_dir(
    dir: &Path,
    target: Target,
    defaults: &JobOptions,
) -> Result<Vec<CompileJob>, String> {
    let extensions = FrontendRegistry::global().extensions_for(WorkloadKind::MaxSat);
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|x| x.to_str())
                .is_some_and(|x| extensions.iter().any(|e| e == &x.to_ascii_lowercase()))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!(
            "{}: no workload files found (recognized extensions: {})",
            dir.display(),
            extensions
                .iter()
                .map(|e| format!(".{e}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok(paths
        .into_iter()
        .map(|p| CompileJob {
            source: JobSource::Path(p),
            frontend: None,
            target: target.clone(),
            options: defaults.clone(),
        })
        .collect())
}

fn parse_manifest(
    manifest: &Path,
    default_target: Target,
    defaults: &JobOptions,
) -> Result<Vec<CompileJob>, String> {
    let text = std::fs::read_to_string(manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let base = manifest.parent().unwrap_or(Path::new("."));
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| format!("{} line {}: {msg}", manifest.display(), lineno + 1);
        let mut fields = line.split_whitespace();
        let Some(file) = fields.next() else {
            continue; // unreachable: the line is non-empty after trim
        };
        let mut target = default_target.clone();
        let mut frontend = None;
        let mut options = defaults.clone();
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| at(format!("expected key=value, got `{field}`")))?;
            let parse_bool = |v: &str| -> Result<bool, String> {
                v.parse()
                    .map_err(|_| at(format!("bad boolean `{v}` for {key}")))
            };
            let parse_f64 = |v: &str| -> Result<f64, String> {
                v.parse()
                    .map_err(|_| at(format!("bad number `{v}` for {key}")))
            };
            match key {
                "target" => target = Target::parse(value).map_err(at)?,
                "frontend" => {
                    // Validate the name at manifest-parse time (with a line
                    // number) instead of deep inside the batch run.
                    let registry = FrontendRegistry::global();
                    let front = registry
                        .get(value)
                        .ok_or_else(|| at(registry.unknown_format(value)))?;
                    frontend = Some(front.info().name);
                }
                "check" => options.check = parse_bool(value)?,
                "compression" => options.compression = parse_bool(value)?,
                "parallel-shuttling" => options.parallel_shuttling = parse_bool(value)?,
                "dsatur" => options.dsatur = parse_bool(value)?,
                "gamma" => options.gamma = parse_f64(value)?,
                "beta" => options.beta = parse_f64(value)?,
                "ccz-fidelity" => options.ccz_fidelity = Some(parse_f64(value)?),
                other => return Err(at(format!("unknown key `{other}`"))),
            }
        }
        let path = base.join(file);
        jobs.push(CompileJob {
            source: JobSource::Path(path),
            frontend,
            target,
            options,
        });
    }
    if jobs.is_empty() {
        return Err(format!("{}: manifest lists no jobs", manifest.display()));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("weaver-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn directory_discovery_sorts_by_name() {
        let dir = scratch_dir("dir");
        for name in ["b.cnf", "a.cnf", "ignored.txt", "c.dimacs"] {
            std::fs::write(dir.join(name), "p cnf 1 1\n1 0\n").unwrap();
        }
        let jobs = discover_jobs(&dir, Target::Fpqa, &JobOptions::default()).unwrap();
        let names: Vec<String> = jobs
            .iter()
            .map(|j| match &j.source {
                JobSource::Path(p) => p.file_name().unwrap().to_string_lossy().into_owned(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["a.cnf", "b.cnf", "c.dimacs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_lines_override_defaults() {
        let dir = scratch_dir("manifest");
        let manifest = dir.join("suite.manifest");
        std::fs::write(
            &manifest,
            "# suite\n\
             one.cnf\n\
             two.cnf target=sc check=true gamma=0.9\n\
             sub/three.cnf compression=false ccz-fidelity=0.95\n\
             four.cnf target=sim\n",
        )
        .unwrap();
        let jobs = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].target, Target::Fpqa);
        assert_eq!(jobs[1].target, Target::Superconducting);
        assert!(jobs[1].options.check);
        assert_eq!(jobs[1].options.gamma, 0.9);
        assert!(!jobs[2].options.compression);
        assert_eq!(jobs[2].options.ccz_fidelity, Some(0.95));
        assert_eq!(jobs[3].target, Target::Simulator);
        assert!(matches!(
            &jobs[2].source,
            JobSource::Path(p) if p.ends_with("sub/three.cnf")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_discovery_includes_all_formula_formats() {
        let dir = scratch_dir("formats");
        std::fs::write(dir.join("a.cnf"), "p cnf 1 1\n1 0\n").unwrap();
        std::fs::write(dir.join("b.wcnf"), "p wcnf 1 1 3\n2 1 0\n").unwrap();
        std::fs::write(dir.join("c.mc"), "1 2\n").unwrap();
        std::fs::write(dir.join("d.wq"), "qreg q[1];\nh q[0];\n").unwrap();
        let jobs = discover_jobs(&dir, Target::Fpqa, &JobOptions::default()).unwrap();
        let names: Vec<String> = jobs
            .iter()
            .map(|j| match &j.source {
                JobSource::Path(p) => p.file_name().unwrap().to_string_lossy().into_owned(),
                _ => unreachable!(),
            })
            .collect();
        // Every formula format is swept up; the circuit file is not.
        assert_eq!(names, vec!["a.cnf", "b.wcnf", "c.mc"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_frontend_key_canonicalizes_and_validates() {
        let dir = scratch_dir("frontendkey");
        let manifest = dir.join("suite.manifest");
        std::fs::write(
            &manifest,
            "one.cnf\ntwo.mc frontend=mc\nthree.wq frontend=wqasm target=sim\n",
        )
        .unwrap();
        let jobs = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).unwrap();
        assert_eq!(jobs[0].frontend, None);
        assert_eq!(
            jobs[1].frontend,
            Some("maxcut".into()),
            "aliases canonicalize"
        );
        assert_eq!(jobs[2].frontend, Some("wqasm".into()));

        std::fs::write(&manifest, "one.cnf\ntwo.cnf frontend=smtlib\n").unwrap();
        let err = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("unknown front end `smtlib`"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_errors_carry_line_numbers() {
        let dir = scratch_dir("badmanifest");
        let manifest = dir.join("bad.manifest");
        std::fs::write(&manifest, "ok.cnf\nbad.cnf target=ion-trap\n").unwrap();
        let err = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_path_is_an_error() {
        let err = discover_jobs(
            Path::new("/definitely/not/here"),
            Target::Fpqa,
            &JobOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("no such file"));
    }
}
