//! **weaver-engine** — a throughput-oriented batch layer above
//! `weaver-core`: where the core pipeline compiles one formula per call,
//! the engine compiles whole suites of Max-3SAT instances across all cores
//! and memoizes finished artifacts content-addressed, so repeated or
//! overlapping jobs hit the cache instead of recompiling.
//!
//! * [`job`] — the job model: a [`CompileJob`] is *workload source ×
//!   target × options*, and a [`JobResult`] carries the artifact, cache
//!   outcome, and per-stage timings,
//! * [`pool`] — a work-stealing thread-pool driver with deterministic,
//!   order-independent results,
//! * [`cache`] — the content-addressed [`ArtifactCache`]: an in-memory LRU
//!   tier plus an optional on-disk tier, keyed by BLAKE2s-256 over the
//!   canonical formula, target parameters, options, and compiler version;
//!   it also owns the shared [`weaver_core::cache::CacheHandle`] so checker
//!   re-runs reuse cached per-annotation device state,
//! * [`manifest`] — job discovery from a fixture directory or a manifest
//!   file,
//! * [`jsonl`] — structured JSONL result streaming for `crates/bench` and
//!   external consumers,
//! * [`server`] — the `weaverd` compile daemon: a framed JSON protocol
//!   over Unix sockets or TCP that multiplexes concurrent clients onto
//!   the worker pool while the caches stay hot across requests,
//! * [`engine`] — the [`Engine`] driver tying it all together.
//!
//! # Example
//!
//! ```
//! use weaver_engine::{CompileJob, Engine, EngineConfig, JobSource};
//! use weaver_sat::generator;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let jobs: Vec<CompileJob> = (1..=4)
//!     .map(|v| CompileJob::from_formula(format!("uf10-{v:02}"), generator::instance(10, v)))
//!     .collect();
//! let cold = engine.run(jobs.clone());
//! assert_eq!(cold.succeeded(), 4);
//! let warm = engine.run(jobs);
//! assert_eq!(warm.cache_hits(), 4, "identical jobs must hit the cache");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod job;
pub mod jsonl;
pub mod manifest;
pub mod pool;
pub mod server;
pub mod store;

pub use cache::{ArtifactCache, CacheConfig, CacheTierStats};
pub use engine::{job_record, job_record_fields, BatchReport, Engine, EngineConfig};
pub use job::{
    Artifact, CacheOutcome, CompileJob, JobError, JobErrorKind, JobOptions, JobResult, JobSource,
    PassTiming, StageTimings, Target,
};
pub use manifest::discover_jobs;
pub use server::{ClientStream, ListenAddr, Server, ServerConfig};
