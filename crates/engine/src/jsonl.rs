//! Minimal dependency-free JSON encoding for result streaming.
//!
//! The engine emits one JSON object per line (JSONL): a `job` record per
//! finished job and a trailing `batch` summary record. Only encoding lives
//! here — the on-disk artifact tier uses its own framed text format.

use std::fmt::Write;

/// Escapes a string for a JSON string literal (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An ordered JSON object builder.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push(format!("\"{}\":{}", escape(key), number(value)));
        self
    }

    /// Adds an integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, `null`, …).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.fields.push(format!("\"{}\":{json}", escape(key)));
        self
    }

    /// Adds an array of strings.
    pub fn str_array(self, key: &str, values: &[String]) -> Self {
        let items: Vec<String> = values
            .iter()
            .map(|v| format!("\"{}\"", escape(v)))
            .collect();
        let array = format!("[{}]", items.join(","));
        self.raw(key, &array)
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn builds_ordered_objects() {
        let json = JsonObject::new()
            .str("kind", "job")
            .u64("index", 3)
            .f64("seconds", 0.25)
            .bool("ok", true)
            .str_array("errors", &["a".to_string(), "b\"c".to_string()])
            .finish();
        assert_eq!(
            json,
            "{\"kind\":\"job\",\"index\":3,\"seconds\":0.25,\"ok\":true,\
             \"errors\":[\"a\",\"b\\\"c\"]}"
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
    }
}
