//! Minimal dependency-free JSON encoding and decoding for result
//! streaming and the server protocol.
//!
//! The engine emits one JSON object per line (JSONL): a `job` record per
//! finished job and a trailing `batch` summary record. The server
//! ([`crate::server`]) additionally *parses* JSON request frames through
//! [`JsonValue::parse`], a small recursive-descent parser — the on-disk
//! artifact tier uses its own framed text format and is unaffected.

use std::fmt::Write;

/// Escapes a string for a JSON string literal (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An ordered JSON object builder.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push(format!("\"{}\":{}", escape(key), number(value)));
        self
    }

    /// Adds an integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, `null`, …).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.fields.push(format!("\"{}\":{json}", escape(key)));
        self
    }

    /// Adds an array of strings.
    pub fn str_array(self, key: &str, values: &[String]) -> Self {
        let items: Vec<String> = values
            .iter()
            .map(|v| format!("\"{}\"", escape(v)))
            .collect();
        let array = format!("[{}]", items.join(","));
        self.raw(key, &array)
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Objects preserve field order (and keep duplicate keys; [`JsonValue::get`]
/// returns the first). Numbers are `f64`, like JavaScript — the protocol
/// never carries integers that lose precision at 2^53.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a field of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: string field of an object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
}

/// Nesting depth bound: protocol frames are flat, so anything deeper is
/// hostile input rather than a real request.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                *other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8".to_string())?,
                    );
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// combining surrogate pairs. Leaves the cursor after the last digit
    /// consumed.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err("unpaired surrogate".to_string());
                }
                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err("unpaired surrogate".to_string());
            }
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| "invalid unicode escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("truncated unicode escape")?;
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad unicode escape".to_string())?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| "bad unicode escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
        if n.is_finite() {
            Ok(JsonValue::Number(n))
        } else {
            Err(format!("non-finite number `{text}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn builds_ordered_objects() {
        let json = JsonObject::new()
            .str("kind", "job")
            .u64("index", 3)
            .f64("seconds", 0.25)
            .bool("ok", true)
            .str_array("errors", &["a".to_string(), "b\"c".to_string()])
            .finish();
        assert_eq!(
            json,
            "{\"kind\":\"job\",\"index\":3,\"seconds\":0.25,\"ok\":true,\
             \"errors\":[\"a\",\"b\\\"c\"]}"
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn parser_roundtrips_builder_output() {
        let json = JsonObject::new()
            .str("kind", "job")
            .u64("index", 3)
            .f64("seconds", 0.25)
            .bool("ok", true)
            .str_array("errors", &["a".to_string(), "b\"c\nd".to_string()])
            .raw("nested", "{\"x\":null}")
            .finish();
        let v = JsonValue::parse(&json).unwrap();
        assert_eq!(v.str_field("kind"), Some("job"));
        assert_eq!(v.get("index").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("seconds").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let errors = v.get("errors").unwrap().as_array().unwrap();
        assert_eq!(errors[1].as_str(), Some("b\"c\nd"));
        assert_eq!(v.get("nested").unwrap().get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = JsonValue::parse(r#""aA\n\t\\ 😀 é""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\\ 😀 é"));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err(), "lone surrogate");
        assert!(JsonValue::parse(r#""\q""#).is_err(), "bad escape");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{\"a\":1}x",
            "\u{1}",
            "--1",
            "1e999",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parser_accepts_numbers_and_nesting() {
        let v = JsonValue::parse(" { \"a\" : [ -1.5e2 , 0, 18446744073709551615 ] } ").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(-150.0));
        assert_eq!(a[0].as_u64(), None, "negative is not a u64");
        assert_eq!(a[1].as_u64(), Some(0));
        let mut deep = String::new();
        for _ in 0..100 {
            deep.push('[');
        }
        assert!(JsonValue::parse(&deep).is_err(), "depth bound holds");
    }
}
