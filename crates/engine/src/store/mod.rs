//! A durable, crash-consistent, single-file paged artifact store.
//!
//! This is the disk tier behind [`crate::ArtifactCache`]: instead of one
//! best-effort file per artifact, all artifacts live in one page file
//! (`store.wvs`) guarded by a write-ahead log (`store.wal`). Every
//! mutation follows the WAL protocol — *append record → fsync WAL →
//! apply to pages → (eventually) checkpoint* — so the store survives
//! being killed at any byte:
//!
//! * a crash **mid-WAL-append** leaves a torn tail that fails its length
//!   or checksum check; recovery discards it and the put never happened,
//! * a crash **mid-page-write** leaves torn pages, but the committed WAL
//!   record carries everything needed to rewrite them; recovery replays,
//! * a crash **mid-checkpoint** leaves the WAL intact; replay is
//!   idempotent,
//! * any page whose checksum still fails is **quarantined**: counted,
//!   served as a miss, and reclaimed — never a panic, never a torn
//!   artifact returned to a caller.
//!
//! Layout lives in [`mod@format`], the log in [`wal`], page I/O and the LRU
//! buffer pool in [`pager`], and the crash-injection hooks in [`fault`].
//!
//! # Example
//!
//! ```
//! use weaver_engine::store::{Store, StoreTuning};
//! use weaver_core::cache::Digest;
//!
//! let dir = std::env::temp_dir().join(format!("wvs-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = Store::open(&dir, StoreTuning::default()).unwrap();
//! let key = Digest([7; 32]);
//! store.put(&key, b"compiled artifact bytes").unwrap();
//! assert_eq!(store.get(&key).unwrap().as_deref(), Some(&b"compiled artifact bytes"[..]));
//!
//! // Reopening recovers the same contents (replaying the WAL if needed).
//! drop(store);
//! let mut store = Store::open(&dir, StoreTuning::default()).unwrap();
//! assert_eq!(store.get(&key).unwrap().as_deref(), Some(&b"compiled artifact bytes"[..]));
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod fault;
pub mod format;
pub mod pager;
pub mod wal;

use fault::FaultState;
use format::{PageScan, PageState, PageView};
use pager::{BufferPool, PageFile};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use wal::{Wal, WalRecord};
use weaver_core::cache::Digest;

/// File name of the page file inside the store directory.
pub const STORE_FILE: &str = "store.wvs";
/// File name of the write-ahead log.
pub const WAL_FILE: &str = "store.wal";
/// File name of the advisory single-writer lock.
pub const LOCK_FILE: &str = "store.lock";
/// Temporary file used during compaction (discarded on open if left over).
pub const COMPACT_FILE: &str = "store.compact";

/// Store tuning knobs (all have production defaults).
#[derive(Clone, Debug)]
pub struct StoreTuning {
    /// Page size for newly created stores (existing stores keep theirs).
    pub page_size: u32,
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
    /// Checkpoint once the WAL grows past this many bytes.
    pub wal_checkpoint_bytes: u64,
    /// Crash-injection state (tests only; `None` in production).
    pub fault: Option<Arc<FaultState>>,
}

impl Default for StoreTuning {
    fn default() -> Self {
        StoreTuning {
            page_size: format::DEFAULT_PAGE_SIZE,
            buffer_pages: 256,
            wal_checkpoint_bytes: 1 << 20,
            fault: None,
        }
    }
}

/// What recovery found and did while opening a store.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Committed WAL records replayed onto the page file.
    pub replayed: u64,
    /// Torn WAL tail bytes discarded.
    pub torn_wal_bytes: u64,
    /// Pages quarantined for checksum failures during the open scan.
    pub quarantined_pages: u64,
    /// Artifact chains dropped for structural damage (bad links, stale
    /// duplicates lose by LSN and are reclaimed silently, not counted).
    pub dropped_chains: u64,
    /// Whether the store or WAL header was damaged and rebuilt.
    pub header_rebuilt: bool,
}

impl RecoveryReport {
    /// Whether the open had anything at all to repair.
    pub fn recovered(&self) -> bool {
        self.replayed > 0
            || self.torn_wal_bytes > 0
            || self.quarantined_pages > 0
            || self.dropped_chains > 0
            || self.header_rebuilt
    }
}

/// Point-in-time store statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Page size in bytes.
    pub page_size: u32,
    /// Total pages (header page included).
    pub page_count: u64,
    /// Pages holding live artifact data.
    pub live_pages: u64,
    /// Reclaimable pages on the free list.
    pub free_pages: u64,
    /// Live artifacts.
    pub artifacts: u64,
    /// Page-file length in bytes.
    pub file_bytes: u64,
    /// WAL length in bytes (header included).
    pub wal_bytes: u64,
    /// Cumulative checksum/structure failures quarantined (open + reads).
    pub checksum_failures: u64,
    /// Cumulative WAL records replayed at open.
    pub wal_replayed: u64,
    /// Opens that had something to repair.
    pub recoveries: u64,
    /// Buffer-pool LRU evictions.
    pub buffer_evictions: u64,
    /// WAL commit fsyncs issued by this handle (each is one commit point;
    /// with group commit several puts can share one).
    pub wal_fsyncs: u64,
    /// [`Store::put_many`] batches that committed more than one record
    /// under a single fsync.
    pub group_commits: u64,
}

/// Result of a full-store verification scan.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyReport {
    /// Artifacts whose every page checksum and whole-payload digest held.
    pub artifacts_ok: u64,
    /// Artifacts quarantined by the scan.
    pub artifacts_failed: u64,
}

impl VerifyReport {
    /// Whether the scan found no damage.
    pub fn consistent(&self) -> bool {
        self.artifacts_failed == 0
    }
}

/// Result of a compaction pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactReport {
    /// Page-file bytes before compaction.
    pub bytes_before: u64,
    /// Page-file bytes after.
    pub bytes_after: u64,
    /// Live artifacts carried over.
    pub artifacts: u64,
    /// Artifacts dropped because they failed verification during the copy.
    pub dropped: u64,
}

#[derive(Clone, Debug)]
struct Chain {
    pages: Vec<u64>,
    lsn: u64,
    total_len: u64,
}

#[derive(Debug, Default)]
struct Counters {
    checksum_failures: u64,
    wal_replayed: u64,
    recoveries: u64,
    wal_fsyncs: u64,
    group_commits: u64,
}

/// Process-global store metric handles, resolved once per open so the
/// mutation paths update plain atomics instead of taking the registry
/// lock. The per-instance [`Counters`] stay authoritative for
/// [`StoreStats`]; these series aggregate across every store handle the
/// process opens.
#[derive(Debug)]
struct StoreMetrics {
    wal_fsync: Arc<weaver_obs::Histogram>,
    page_write: Arc<weaver_obs::Histogram>,
    checksum_failures: Arc<weaver_obs::Counter>,
    wal_replayed: Arc<weaver_obs::Counter>,
    recoveries: Arc<weaver_obs::Counter>,
}

impl StoreMetrics {
    fn new() -> Self {
        StoreMetrics {
            wal_fsync: weaver_obs::metrics::latency_histogram(
                "weaver_store_wal_fsync_seconds",
                "WAL append+fsync latency (the commit point of every mutation).",
            ),
            page_write: weaver_obs::metrics::latency_histogram(
                "weaver_store_page_write_seconds",
                "Latency of applying a committed put to the page file.",
            ),
            checksum_failures: weaver_obs::metrics::counter(
                "weaver_store_checksum_failures_total",
                "Pages or chains quarantined for checksum/structure failures.",
            ),
            wal_replayed: weaver_obs::metrics::counter(
                "weaver_store_wal_replayed_total",
                "Committed WAL records replayed during store opens.",
            ),
            recoveries: weaver_obs::metrics::counter(
                "weaver_store_recoveries_total",
                "Store opens that had crash damage to repair.",
            ),
        }
    }
}

/// Returns whether an open failed because another live process (or another
/// handle in this process) holds the store.
pub fn is_locked(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::WouldBlock
}

// ---------------------------------------------------------------------------
// Advisory single-writer lock
// ---------------------------------------------------------------------------

fn locked_dirs() -> &'static Mutex<HashSet<PathBuf>> {
    static DIRS: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    DIRS.get_or_init(|| Mutex::new(HashSet::new()))
}

/// What a liveness probe of a lock-holding PID concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Liveness {
    /// The process demonstrably exists.
    Alive,
    /// The process demonstrably does not exist: the lock is stale.
    Dead,
    /// No probe is possible (non-Linux, or `/proc` not mounted). Treated
    /// as *live*: wrongly stealing a live holder's lock races the WAL and
    /// corrupts the store, while wrongly respecting a dead holder's lock
    /// merely degrades this opener to the legacy tier.
    Unknown,
}

/// Probes whether the process that wrote `pid` into the lock file still
/// exists. Liveness-unknown conservatively reads as alive (see
/// [`Liveness::Unknown`]).
fn probe_pid(pid: u32) -> Liveness {
    if pid == std::process::id() {
        // Same process but not in the in-process registry: the previous
        // holder died without Drop (e.g. a crash-injection trial) — stale.
        return Liveness::Dead;
    }
    #[cfg(target_os = "linux")]
    {
        if !Path::new("/proc/self").exists() {
            // Linux without /proc mounted (minimal chroot/container):
            // nothing to probe against.
            return Liveness::Unknown;
        }
        if Path::new(&format!("/proc/{pid}")).exists() {
            Liveness::Alive
        } else {
            Liveness::Dead
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        Liveness::Unknown
    }
}

#[derive(Debug)]
struct DirLock {
    dir: PathBuf,
    lock_path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> std::io::Result<DirLock> {
        let canonical = dir.canonicalize()?;
        let lock_path = dir.join(LOCK_FILE);
        {
            let mut held = locked_dirs()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if held.contains(&canonical) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    format!("store at {} is already open in this process", dir.display()),
                ));
            }
            if let Ok(text) = std::fs::read_to_string(&lock_path) {
                // An unparseable file was not written by a weaver store
                // holder — steal it below, same as a dead holder's.
                if let Ok(pid) = text.trim().parse::<u32>() {
                    match probe_pid(pid) {
                        Liveness::Alive => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::WouldBlock,
                                format!(
                                    "store at {} is locked by live process {pid}",
                                    dir.display()
                                ),
                            ));
                        }
                        Liveness::Unknown => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::WouldBlock,
                                format!(
                                    "store at {} is locked by process {pid} \
                                     (liveness unknown; assuming live)",
                                    dir.display()
                                ),
                            ));
                        }
                        // Provably dead: reclaim the stale lock below.
                        Liveness::Dead => {
                            weaver_obs::log::debug(
                                "weaver-store",
                                &format!(
                                    "reclaiming stale lock at {} left by dead process {pid}",
                                    lock_path.display()
                                ),
                            );
                        }
                    }
                }
            }
            std::fs::write(&lock_path, format!("{}\n", std::process::id()))?;
            held.insert(canonical.clone());
        }
        Ok(DirLock {
            dir: canonical,
            lock_path,
        })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock_path);
        locked_dirs()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.dir);
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// The paged artifact store (see module docs for the design).
///
/// One `Store` is the single writer of its directory: opens are guarded by
/// an advisory lock (stale locks from dead processes are stolen), and all
/// methods take `&mut self` — [`crate::ArtifactCache`] serializes access
/// behind a mutex.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    tuning: StoreTuning,
    page_size: u32,
    file: PageFile,
    wal: Wal,
    pool: BufferPool,
    index: HashMap<Digest, Chain>,
    free: Vec<u64>,
    page_count: u64,
    next_lsn: u64,
    poisoned: bool,
    counters: Counters,
    metrics: StoreMetrics,
    recovery: RecoveryReport,
    _lock: DirLock,
}

impl Store {
    /// Opens (creating if needed) the store in `dir`, running recovery:
    /// committed WAL records are replayed, torn tails discarded, damaged
    /// pages quarantined, and the log checkpointed.
    pub fn open(dir: &Path, tuning: StoreTuning) -> std::io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        let lock = DirLock::acquire(dir)?;
        // A leftover compaction temp file means a crash mid-compact; the
        // real store file is still authoritative.
        let _ = std::fs::remove_file(dir.join(COMPACT_FILE));

        let mut report = RecoveryReport::default();
        let store_path = dir.join(STORE_FILE);
        let mut file = PageFile::open(&store_path, tuning.page_size, tuning.fault.clone())?;
        let page_size = if file.len_bytes()? == 0 {
            file.write_page(0, &format::encode_header(tuning.page_size, 1))?;
            file.sync()?;
            tuning.page_size
        } else {
            match format::decode_header(&file.read_page(0)?) {
                Some(h) => h.page_size,
                None => {
                    report.header_rebuilt = true;
                    tuning.page_size
                }
            }
        };
        if page_size != tuning.page_size {
            file = PageFile::open(&store_path, page_size, tuning.fault.clone())?;
        }

        let (wal, wal_open) = Wal::open(&dir.join(WAL_FILE), page_size, tuning.fault.clone())?;
        report.torn_wal_bytes = wal_open.torn_bytes;
        report.header_rebuilt |= wal_open.header_rebuilt;
        report.replayed = wal_open.records.len() as u64;

        // Phase 1 — replay: rewrite every page image of every committed
        // record, in LSN order. Idempotent, so records already applied
        // before the crash are harmless.
        let mut wal_max_lsn = 0;
        for record in &wal_open.records {
            wal_max_lsn = wal_max_lsn.max(record.lsn());
            for (pid, image) in record_images(record, page_size) {
                file.write_page(pid, &image)?;
            }
        }

        // Phase 2 — scan: classify every page and rebuild the index from
        // the head chains, newest LSN winning on key collisions.
        let page_count = file.len_pages()?.max(1);
        let mut valid: HashMap<u64, PageView> = HashMap::new();
        let mut heads: Vec<(u64, PageView)> = Vec::new();
        for pid in 1..page_count {
            match format::decode_page(&file.read_page(pid)?) {
                PageScan::Blank => {}
                PageScan::Corrupt => report.quarantined_pages += 1,
                PageScan::Valid(view) => {
                    if view.state == PageState::Head {
                        heads.push((pid, view.clone()));
                    }
                    valid.insert(pid, view);
                }
            }
        }
        heads.sort_by(|a, b| b.1.lsn.cmp(&a.1.lsn).then(a.0.cmp(&b.0)));
        let mut index: HashMap<Digest, Chain> = HashMap::new();
        let mut claimed: HashSet<u64> = HashSet::new();
        let mut max_lsn = wal_max_lsn;
        for (pid, head) in heads {
            // A Valid head always decodes a key; treat a missing one as
            // structural damage rather than panicking mid-recovery.
            let Some(key) = head.key else {
                report.dropped_chains += 1;
                continue;
            };
            if index.contains_key(&key) {
                continue; // stale duplicate — a newer LSN already won
            }
            match walk_chain(pid, &head, &valid, &claimed) {
                Some(pages) => {
                    claimed.extend(pages.iter().copied());
                    max_lsn = max_lsn.max(head.lsn);
                    index.insert(
                        key,
                        Chain {
                            pages,
                            lsn: head.lsn,
                            total_len: head.total_len,
                        },
                    );
                }
                None => report.dropped_chains += 1,
            }
        }
        let free: Vec<u64> = (1..page_count).filter(|p| !claimed.contains(p)).collect();

        let metrics = StoreMetrics::new();
        metrics
            .checksum_failures
            .add(report.quarantined_pages + report.dropped_chains);
        metrics.wal_replayed.add(report.replayed);
        metrics.recoveries.add(u64::from(report.recovered()));
        let mut store = Store {
            dir: dir.to_path_buf(),
            page_size,
            pool: BufferPool::new(tuning.buffer_pages),
            tuning,
            file,
            wal,
            index,
            free: sorted_free(free),
            page_count,
            next_lsn: max_lsn + 1,
            poisoned: false,
            counters: Counters {
                checksum_failures: report.quarantined_pages + report.dropped_chains,
                wal_replayed: report.replayed,
                recoveries: u64::from(report.recovered()),
                ..Counters::default()
            },
            metrics,
            recovery: report,
            _lock: lock,
        };
        // Phase 3 — checkpoint: the replayed pages are now authoritative.
        store.checkpoint()?;
        Ok(store)
    }

    /// What recovery found while opening this handle.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Live artifact count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &Digest) -> bool {
        self.index.contains_key(key)
    }

    /// Live keys, sorted.
    pub fn keys(&self) -> Vec<Digest> {
        let mut keys: Vec<Digest> = self.index.keys().copied().collect();
        keys.sort();
        keys
    }

    fn check_poisoned(&self) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "store poisoned by an earlier I/O failure; reopen to recover",
            ));
        }
        Ok(())
    }

    fn poison<T>(&mut self, r: std::io::Result<T>) -> std::io::Result<T> {
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    fn allocate(&mut self, n: usize) -> Vec<u64> {
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            match self.free.pop() {
                Some(pid) => pages.push(pid),
                None => {
                    pages.push(self.page_count);
                    self.page_count += 1;
                }
            }
        }
        pages
    }

    /// Stores `payload` under `key`, replacing any existing entry. On
    /// return the write is committed (WAL fsynced): a crash at any later
    /// point preserves it.
    pub fn put(&mut self, key: &Digest, payload: &[u8]) -> std::io::Result<()> {
        self.put_many_ref(&[(key, payload)])
    }

    /// Stores every `(key, payload)` pair under a *single* WAL fsync —
    /// group commit. Later entries for the same key win, exactly as if the
    /// puts ran in order. A crash mid-batch preserves a prefix of the
    /// batch (each record is individually framed in the WAL), never a torn
    /// record.
    pub fn put_many(&mut self, items: &[(Digest, Vec<u8>)]) -> std::io::Result<()> {
        let refs: Vec<(&Digest, &[u8])> = items.iter().map(|(k, p)| (k, p.as_slice())).collect();
        self.put_many_ref(&refs)
    }

    fn put_many_ref(&mut self, items: &[(&Digest, &[u8])]) -> std::io::Result<()> {
        self.check_poisoned()?;
        if items.is_empty() {
            return Ok(());
        }
        // Phase A — build one record per item in order. A key written
        // twice in the batch chains `old_head` through its earlier record
        // so apply frees the superseded chain, same as sequential puts.
        let mut batch_heads: HashMap<Digest, u64> = HashMap::new();
        let mut records = Vec::with_capacity(items.len());
        for (key, payload) in items {
            let n = format::pages_for(payload.len(), self.page_size);
            let pages = self.allocate(n);
            let lsn = self.next_lsn;
            self.next_lsn += 1;
            let old_head = batch_heads
                .get(*key)
                .copied()
                .or_else(|| self.index.get(*key).map(|c| c.pages[0]))
                .unwrap_or(0);
            batch_heads.insert(**key, pages[0]);
            records.push(WalRecord::Put {
                lsn,
                key: **key,
                total_len: payload.len() as u64,
                content: format::content_digest(payload),
                old_head,
                pages,
                payload: payload.to_vec(),
            });
        }
        // Phase B — one append, one fsync: the whole batch's commit point.
        let fsync_start = std::time::Instant::now();
        let committed = self.wal.append_batch(&records);
        self.metrics
            .wal_fsync
            .observe(fsync_start.elapsed().as_secs_f64());
        self.poison(committed)?;
        self.counters.wal_fsyncs += 1;
        if records.len() > 1 {
            self.counters.group_commits += 1;
        }
        // Phase C — apply in LSN order (earlier chains freed correctly).
        let write_start = std::time::Instant::now();
        for record in &records {
            self.apply_put(record)?;
        }
        self.metrics
            .page_write
            .observe(write_start.elapsed().as_secs_f64());
        self.maybe_checkpoint()
    }

    /// Removes `key`; returns whether it was present. Committed like
    /// [`Store::put`].
    pub fn delete(&mut self, key: &Digest) -> std::io::Result<bool> {
        self.check_poisoned()?;
        let Some(chain) = self.index.get(key).cloned() else {
            return Ok(false);
        };
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let record = WalRecord::Delete {
            lsn,
            key: *key,
            head_page: chain.pages[0],
        };
        let fsync_start = std::time::Instant::now();
        let committed = self.wal.append(&record);
        self.metrics
            .wal_fsync
            .observe(fsync_start.elapsed().as_secs_f64());
        self.poison(committed)?;
        self.counters.wal_fsyncs += 1;
        let image = format::encode_free(self.page_size, lsn);
        let write = self.file.write_page(chain.pages[0], &image);
        self.poison(write)?;
        self.free_chain(&chain);
        self.index.remove(key);
        self.maybe_checkpoint()?;
        Ok(true)
    }

    /// Fetches the payload stored under `key`. `Ok(None)` is a miss —
    /// either the key is absent or its chain failed verification and was
    /// quarantined (counted in [`StoreStats::checksum_failures`]).
    pub fn get(&mut self, key: &Digest) -> std::io::Result<Option<Vec<u8>>> {
        if self.poisoned {
            return Ok(None);
        }
        let Some(chain) = self.index.get(key).cloned() else {
            return Ok(None);
        };
        let mut payload = Vec::with_capacity(chain.total_len as usize);
        let mut expected_content: Option<Digest> = None;
        for (i, &pid) in chain.pages.iter().enumerate() {
            let image = match self.pool.get(pid) {
                Some(image) => image,
                None => {
                    let image = Arc::new(self.file.read_page(pid)?);
                    self.pool.insert(pid, image.clone());
                    image
                }
            };
            let view = match format::decode_page(&image) {
                PageScan::Valid(v) => v,
                _ => return Ok(self.quarantine(key, &chain)),
            };
            let expected_state = if i == 0 {
                PageState::Head
            } else {
                PageState::Cont
            };
            if view.state != expected_state
                || view.lsn != chain.lsn
                || (i == 0 && view.key != Some(*key))
            {
                return Ok(self.quarantine(key, &chain));
            }
            if i == 0 {
                expected_content = view.content;
            }
            payload.extend_from_slice(format::page_payload(&image, &view));
        }
        if payload.len() as u64 != chain.total_len
            || expected_content != Some(format::content_digest(&payload))
        {
            return Ok(self.quarantine(key, &chain));
        }
        Ok(Some(payload))
    }

    /// Checkpoints: fsyncs the page file, then truncates the WAL. Bounds
    /// recovery replay; called automatically once the WAL passes
    /// [`StoreTuning::wal_checkpoint_bytes`].
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        self.check_poisoned()?;
        let header = format::encode_header(self.page_size, self.page_count);
        let steps = self
            .file
            .write_page(0, &header)
            .and_then(|()| self.file.sync())
            .and_then(|()| self.wal.truncate());
        self.poison(steps)
    }

    /// Rewrites the store with live chains packed contiguously, reclaiming
    /// free pages. Crash-safe: the new file is built aside and swapped in
    /// with an atomic rename; a crash mid-compact leaves the old store.
    pub fn compact(&mut self) -> std::io::Result<CompactReport> {
        self.check_poisoned()?;
        self.checkpoint()?;
        let mut report = CompactReport {
            bytes_before: self.file.len_bytes()?,
            ..CompactReport::default()
        };

        let tmp_path = self.dir.join(COMPACT_FILE);
        let _ = std::fs::remove_file(&tmp_path);
        let build = self.build_compacted(&tmp_path, &mut report);
        let new_index = match build {
            Ok(idx) => idx,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp_path);
                return Err(e);
            }
        };
        if let Err(e) = std::fs::rename(&tmp_path, self.dir.join(STORE_FILE)) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }
        // Point of no return: the new file is live. Best-effort directory
        // sync so the rename itself is durable.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let reopen = PageFile::open(
            &self.dir.join(STORE_FILE),
            self.page_size,
            self.tuning.fault.clone(),
        );
        self.file = self.poison(reopen)?;
        self.page_count = 1 + new_index
            .values()
            .map(|c| c.pages.len() as u64)
            .sum::<u64>();
        self.index = new_index;
        self.free.clear();
        self.pool.clear();
        report.bytes_after = self.file.len_bytes()?;
        Ok(report)
    }

    fn build_compacted(
        &mut self,
        tmp_path: &Path,
        report: &mut CompactReport,
    ) -> std::io::Result<HashMap<Digest, Chain>> {
        let mut tmp = PageFile::open(tmp_path, self.page_size, self.tuning.fault.clone())?;
        let mut new_index: HashMap<Digest, Chain> = HashMap::new();
        let mut next_pid = 1u64;
        for key in self.keys() {
            let Some(payload) = self.get(&key)? else {
                report.dropped += 1;
                continue;
            };
            let chain_lsn = self.index[&key].lsn;
            let n = format::pages_for(payload.len(), self.page_size);
            let pages: Vec<u64> = (next_pid..next_pid + n as u64).collect();
            next_pid += n as u64;
            let record = WalRecord::Put {
                lsn: chain_lsn,
                key,
                total_len: payload.len() as u64,
                content: format::content_digest(&payload),
                old_head: 0,
                pages: pages.clone(),
                payload,
            };
            let total_len = match &record {
                WalRecord::Put { total_len, .. } => *total_len,
                WalRecord::Delete { .. } => unreachable!(),
            };
            for (pid, image) in record_images(&record, self.page_size) {
                tmp.write_page(pid, &image)?;
            }
            new_index.insert(
                key,
                Chain {
                    pages,
                    lsn: chain_lsn,
                    total_len,
                },
            );
            report.artifacts += 1;
        }
        tmp.write_page(0, &format::encode_header(self.page_size, next_pid))?;
        tmp.sync()?;
        Ok(new_index)
    }

    /// Verifies every live artifact end to end: per-page checksums, chain
    /// structure, and the whole-payload digest. Damaged chains are
    /// quarantined (become misses) and counted.
    pub fn verify(&mut self) -> std::io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for key in self.keys() {
            match self.get(&key)? {
                Some(_) => report.artifacts_ok += 1,
                None => report.artifacts_failed += 1,
            }
        }
        Ok(report)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            page_size: self.page_size,
            page_count: self.page_count,
            live_pages: self.index.values().map(|c| c.pages.len() as u64).sum(),
            free_pages: self.free.len() as u64,
            artifacts: self.index.len() as u64,
            file_bytes: self.file.len_bytes().unwrap_or(0),
            wal_bytes: self.wal.len(),
            checksum_failures: self.counters.checksum_failures,
            wal_replayed: self.counters.wal_replayed,
            recoveries: self.counters.recoveries,
            buffer_evictions: self.pool.evictions(),
            wal_fsyncs: self.counters.wal_fsyncs,
            group_commits: self.counters.group_commits,
        }
    }

    /// Publishes the current [`StoreStats`] into the process-global metrics
    /// registry as `weaver_store_*` gauges, so a [`weaver_obs::metrics`]
    /// snapshot (CLI `cache stats`, the future daemon admin surface)
    /// carries the store's size and health alongside the counters.
    pub fn publish_metrics(&self) {
        let stats = self.stats();
        for (name, help, value) in [
            (
                "weaver_store_artifacts",
                "Live artifacts in the paged store.",
                stats.artifacts as f64,
            ),
            (
                "weaver_store_file_bytes",
                "Page-file length in bytes.",
                stats.file_bytes as f64,
            ),
            (
                "weaver_store_wal_bytes",
                "WAL length in bytes (header included).",
                stats.wal_bytes as f64,
            ),
            (
                "weaver_store_live_pages",
                "Pages holding live artifact data.",
                stats.live_pages as f64,
            ),
            (
                "weaver_store_free_pages",
                "Reclaimable pages on the free list.",
                stats.free_pages as f64,
            ),
            (
                "weaver_store_buffer_evictions",
                "Buffer-pool LRU evictions.",
                stats.buffer_evictions as f64,
            ),
        ] {
            weaver_obs::metrics::gauge(name, help).set(value);
        }
    }

    fn apply_put(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let WalRecord::Put {
            lsn,
            key,
            total_len,
            pages,
            ..
        } = record
        else {
            unreachable!("apply_put takes put records");
        };
        for (pid, image) in record_images(record, self.page_size) {
            let write = self.file.write_page(pid, &image);
            self.poison(write)?;
            self.pool.insert(pid, Arc::new(image));
        }
        if let Some(old) = self.index.remove(key) {
            self.free_chain(&old);
        }
        self.index.insert(
            *key,
            Chain {
                pages: pages.clone(),
                lsn: *lsn,
                total_len: *total_len,
            },
        );
        Ok(())
    }

    fn free_chain(&mut self, chain: &Chain) {
        for &pid in &chain.pages {
            self.pool.remove(pid);
            self.free.push(pid);
        }
        self.free = sorted_free(std::mem::take(&mut self.free));
    }

    fn quarantine(&mut self, key: &Digest, chain: &Chain) -> Option<Vec<u8>> {
        self.counters.checksum_failures += 1;
        self.metrics.checksum_failures.inc();
        // Debug, not warn: crash-recovery tests quarantine deliberately and
        // the condition is already surfaced via counters and StoreStats.
        weaver_obs::log::debug(
            "weaver-store",
            &format!("artifact {} failed verification; quarantined", key.to_hex()),
        );
        self.index.remove(key);
        self.free_chain(chain);
        None
    }

    fn maybe_checkpoint(&mut self) -> std::io::Result<()> {
        if self.wal.len() > self.tuning.wal_checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }
}

/// Keeps the free list sorted descending so `pop` hands out the lowest
/// page id first (locality, and deterministic layouts in tests).
fn sorted_free(mut free: Vec<u64>) -> Vec<u64> {
    free.sort_unstable_by(|a, b| b.cmp(a));
    free
}

/// Materializes the page images a put record writes; deletes produce the
/// freed head image. Used identically by runtime apply and replay, so
/// recovery reconstructs byte-identical pages.
fn record_images(record: &WalRecord, page_size: u32) -> Vec<(u64, Vec<u8>)> {
    match record {
        WalRecord::Put {
            lsn,
            key,
            total_len,
            content,
            old_head,
            pages,
            payload,
        } => {
            let mut images = Vec::with_capacity(pages.len() + 1);
            if *old_head != 0 {
                images.push((*old_head, format::encode_free(page_size, *lsn)));
            }
            let head_cap = format::head_capacity(page_size).min(payload.len());
            let mut offset = head_cap;
            images.push((
                pages[0],
                format::encode_head(
                    page_size,
                    key,
                    *total_len,
                    content,
                    &payload[..head_cap],
                    pages.get(1).copied().unwrap_or(0),
                    *lsn,
                ),
            ));
            for (i, &pid) in pages.iter().enumerate().skip(1) {
                let take = format::cont_capacity(page_size).min(payload.len() - offset);
                images.push((
                    pid,
                    format::encode_cont(
                        page_size,
                        &payload[offset..offset + take],
                        pages.get(i + 1).copied().unwrap_or(0),
                        *lsn,
                    ),
                ));
                offset += take;
            }
            images
        }
        WalRecord::Delete { lsn, head_page, .. } => {
            vec![(*head_page, format::encode_free(page_size, *lsn))]
        }
    }
}

/// Walks a head's chain, validating structure: links in range, every page
/// checksum-valid, continuation state, matching LSN, lengths summing to
/// the head's total. Returns the page ids (head first) or `None`.
fn walk_chain(
    head_pid: u64,
    head: &PageView,
    valid: &HashMap<u64, PageView>,
    claimed: &HashSet<u64>,
) -> Option<Vec<u64>> {
    let mut pages = vec![head_pid];
    let mut seen: HashSet<u64> = pages.iter().copied().collect();
    let mut length = head.payload_len as u64;
    let mut next = head.next;
    while next != 0 {
        if claimed.contains(&next) || !seen.insert(next) {
            return None;
        }
        let view = valid.get(&next)?;
        if view.state != PageState::Cont || view.lsn != head.lsn {
            return None;
        }
        pages.push(next);
        length += view.payload_len as u64;
        next = view.next;
    }
    (length == head.total_len).then_some(pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "weaver-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn key(tag: u8) -> Digest {
        Digest([tag; 32])
    }

    fn tuning(page_size: u32) -> StoreTuning {
        StoreTuning {
            page_size,
            buffer_pages: 8,
            ..StoreTuning::default()
        }
    }

    #[test]
    fn put_get_roundtrips_across_page_boundaries() {
        let d = dir("roundtrip");
        let mut s = Store::open(&d, tuning(256)).unwrap();
        for (tag, len) in [(1u8, 0usize), (2, 1), (3, 152), (4, 153), (5, 10_000)] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8 ^ tag).collect();
            s.put(&key(tag), &payload).unwrap();
            assert_eq!(s.get(&key(tag)).unwrap().unwrap(), payload, "len {len}");
        }
        assert_eq!(s.len(), 5);
        assert!(s.verify().unwrap().consistent());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn reopen_recovers_everything_without_checkpoint() {
        let d = dir("reopen");
        let payloads: Vec<Vec<u8>> = (0..6u8).map(|t| vec![t; 700]).collect();
        {
            let mut s = Store::open(&d, tuning(256)).unwrap();
            for (t, p) in payloads.iter().enumerate() {
                s.put(&key(t as u8), p).unwrap();
            }
            // No checkpoint, no clean close: drop with a full WAL.
        }
        let mut s = Store::open(&d, tuning(256)).unwrap();
        assert!(s.recovery().replayed > 0, "reopen must replay the WAL");
        for (t, p) in payloads.iter().enumerate() {
            assert_eq!(s.get(&key(t as u8)).unwrap().unwrap(), *p);
        }
        assert!(s.verify().unwrap().consistent());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn overwrite_and_delete_reclaim_pages() {
        let d = dir("reclaim");
        let mut s = Store::open(&d, tuning(256)).unwrap();
        s.put(&key(1), &[1u8; 2000]).unwrap();
        let pages_before = s.stats().page_count;
        for round in 0..5u8 {
            s.put(&key(1), &vec![round; 2000]).unwrap();
        }
        // Overwrites alternate between two chains' worth of pages.
        assert!(s.stats().page_count <= pages_before * 2);
        assert!(s.delete(&key(1)).unwrap());
        assert!(!s.delete(&key(1)).unwrap());
        assert!(s.get(&key(1)).unwrap().is_none());
        assert_eq!(s.stats().live_pages, 0);
        // A deleted key stays deleted across recovery.
        drop(s);
        let mut s = Store::open(&d, tuning(256)).unwrap();
        assert!(s.get(&key(1)).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupted_page_quarantines_as_a_miss() {
        let d = dir("quarantine");
        {
            let mut s = Store::open(&d, tuning(256)).unwrap();
            s.put(&key(1), &[1u8; 500]).unwrap();
            s.put(&key(2), &[2u8; 500]).unwrap();
            s.checkpoint().unwrap();
        }
        // Flip a byte in the middle of page 1 (key 1's chain).
        let path = d.join(STORE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[256 + 150] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut s = Store::open(&d, tuning(256)).unwrap();
        assert!(s.recovery().recovered());
        assert!(s.get(&key(1)).unwrap().is_none(), "quarantined, not torn");
        assert_eq!(s.get(&key(2)).unwrap().unwrap(), vec![2u8; 500]);
        assert!(s.stats().checksum_failures > 0);
        // The quarantined pages are reclaimed by later writes.
        s.put(&key(3), &[3u8; 500]).unwrap();
        assert!(s.verify().unwrap().consistent());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn compaction_shrinks_and_preserves_contents() {
        let d = dir("compact");
        let mut s = Store::open(&d, tuning(256)).unwrap();
        for t in 0..10u8 {
            s.put(&key(t), &vec![t; 1500]).unwrap();
        }
        for t in 0..8u8 {
            s.delete(&key(t)).unwrap();
        }
        let report = s.compact().unwrap();
        assert_eq!(report.artifacts, 2);
        assert!(
            report.bytes_after < report.bytes_before,
            "{report:?} must shrink"
        );
        assert_eq!(s.get(&key(8)).unwrap().unwrap(), vec![8u8; 1500]);
        assert_eq!(s.get(&key(9)).unwrap().unwrap(), vec![9u8; 1500]);
        drop(s);
        let mut s = Store::open(&d, tuning(256)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&key(9)).unwrap().unwrap(), vec![9u8; 1500]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn put_many_commits_a_batch_under_one_fsync() {
        let d = dir("groupcommit");
        let mut s = Store::open(&d, tuning(256)).unwrap();
        let fsyncs_before = s.stats().wal_fsyncs;
        let batch: Vec<(Digest, Vec<u8>)> = (0..8u8).map(|t| (key(t), vec![t; 700])).collect();
        s.put_many(&batch).unwrap();
        let stats = s.stats();
        assert_eq!(stats.wal_fsyncs, fsyncs_before + 1, "one commit point");
        assert_eq!(stats.group_commits, 1);
        for (k, p) in &batch {
            assert_eq!(s.get(k).unwrap().unwrap(), *p);
        }
        // Survives recovery like any sequence of puts.
        drop(s);
        let mut s = Store::open(&d, tuning(256)).unwrap();
        for (k, p) in &batch {
            assert_eq!(s.get(k).unwrap().unwrap(), *p);
        }
        assert!(s.verify().unwrap().consistent());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn put_many_duplicate_keys_last_write_wins() {
        let d = dir("groupdup");
        let mut s = Store::open(&d, tuning(256)).unwrap();
        s.put(&key(1), &[9u8; 300]).unwrap();
        let batch = vec![
            (key(1), vec![1u8; 600]),
            (key(2), vec![2u8; 600]),
            (key(1), vec![3u8; 600]),
        ];
        s.put_many(&batch).unwrap();
        assert_eq!(s.get(&key(1)).unwrap().unwrap(), vec![3u8; 600]);
        assert_eq!(s.get(&key(2)).unwrap().unwrap(), vec![2u8; 600]);
        assert!(s.verify().unwrap().consistent());
        drop(s);
        let mut s = Store::open(&d, tuning(256)).unwrap();
        assert_eq!(s.get(&key(1)).unwrap().unwrap(), vec![3u8; 600]);
        assert!(s.verify().unwrap().consistent());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn second_open_in_process_is_locked_and_drop_releases() {
        let d = dir("lock");
        let s = Store::open(&d, tuning(256)).unwrap();
        let err = Store::open(&d, tuning(256)).unwrap_err();
        assert!(is_locked(&err), "{err}");
        drop(s);
        Store::open(&d, tuning(256)).unwrap();
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn wal_growth_triggers_automatic_checkpoint() {
        let d = dir("autockpt");
        let mut t = tuning(256);
        t.wal_checkpoint_bytes = 2048;
        let mut s = Store::open(&d, t).unwrap();
        for round in 0..20u8 {
            s.put(&key(1), &vec![round; 600]).unwrap();
        }
        assert!(
            s.stats().wal_bytes <= 2048 + 700 + format::WAL_HEADER_LEN,
            "wal stays bounded, got {}",
            s.stats().wal_bytes
        );
        let _ = std::fs::remove_dir_all(&d);
    }
}
