//! Byte-granular fault injection for the paged store.
//!
//! The crash-injection harness arms a [`FaultState`] with a byte budget;
//! every write, truncate, and sync the store issues afterwards consumes
//! budget, and the operation that exhausts it is *torn*: a prefix of the
//! buffer reaches the file and the call fails with
//! [`std::io::ErrorKind::Other`]. From the store's point of view this is
//! indistinguishable from the process dying mid-syscall, so reopening the
//! same directory exercises exactly the recovery paths a real crash would.
//!
//! Production stores run with no fault state attached; the wrapper then
//! compiles down to plain `File` I/O.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared crash-injection state. Cloneable via `Arc`; one state can govern
/// every file of a store so the budget spans WAL appends, page applies, and
/// checkpoints alike.
#[derive(Debug, Default)]
pub struct FaultState {
    /// Remaining writable bytes before the injected crash (negative once
    /// tripped). Point operations (truncate, sync) cost one unit each.
    budget: AtomicI64,
    /// Whether injection is active at all.
    armed: AtomicBool,
    /// How many operations have been denied so far.
    trips: AtomicU64,
}

impl FaultState {
    /// A state that will tear the write that crosses `budget_bytes`.
    pub fn arm(budget_bytes: u64) -> Arc<Self> {
        let state = FaultState::default();
        state.budget.store(budget_bytes as i64, Ordering::SeqCst);
        state.armed.store(true, Ordering::SeqCst);
        Arc::new(state)
    }

    /// A state that passes everything through until [`FaultState::rearm`].
    pub fn disarmed() -> Arc<Self> {
        Arc::new(FaultState::default())
    }

    /// (Re)arms with a fresh budget. Attaching a disarmed state at open and
    /// rearming afterwards scopes the budget to the workload itself rather
    /// than open-time recovery writes.
    pub fn rearm(&self, budget_bytes: u64) {
        self.budget.store(budget_bytes as i64, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Times the store tripped over the budget.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::SeqCst)
    }

    /// Remaining budget (negative once tripped). Arming with a huge budget
    /// and reading this afterwards measures a workload's total byte cost —
    /// the crash harness uses that to pick trip points that land inside it.
    pub fn remaining(&self) -> i64 {
        self.budget.load(Ordering::SeqCst)
    }

    /// Consumes budget for an `n`-byte write. Returns how many bytes may
    /// actually reach the file; `None` means the full write may proceed.
    fn consume(&self, n: usize) -> Option<usize> {
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        let before = self.budget.fetch_sub(n as i64, Ordering::SeqCst);
        if before >= n as i64 {
            None
        } else {
            self.trips.fetch_add(1, Ordering::SeqCst);
            Some(before.max(0) as usize)
        }
    }
}

fn injected() -> std::io::Error {
    std::io::Error::other("injected crash: write budget exhausted")
}

/// A `File` plus an optional [`FaultState`], exposing the positional I/O
/// surface the store needs (`read_at` / `write_at` / `set_len` / `sync`).
#[derive(Debug)]
pub struct FaultFile {
    file: File,
    fault: Option<Arc<FaultState>>,
}

impl FaultFile {
    /// Opens (read/write, creating if absent) `path` under `fault`.
    pub fn open(path: &Path, fault: Option<Arc<FaultState>>) -> std::io::Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FaultFile { file, fault })
    }

    /// Current file length in bytes. (`is_empty` would be a fallible
    /// `len() == 0` with no caller; the lint trade is not worth it here.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Reads exactly `buf.len()` bytes at `offset` (reads are never faulted
    /// — a crash loses writes, not the ability to read what is there).
    pub fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    /// Writes `buf` at `offset`; under an armed fault the write may be torn
    /// (a prefix lands) and the call fails.
    pub fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> std::io::Result<()> {
        if let Some(fault) = &self.fault {
            if let Some(allowed) = fault.consume(buf.len()) {
                self.file.seek(SeekFrom::Start(offset))?;
                self.file.write_all(&buf[..allowed])?;
                return Err(injected());
            }
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(buf)
    }

    /// Truncates (or extends) the file; costs one budget unit when faulted.
    pub fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        if let Some(fault) = &self.fault {
            if fault.consume(1).is_some() {
                return Err(injected());
            }
        }
        self.file.set_len(len)
    }

    /// Flushes file contents to stable storage; costs one budget unit.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let Some(fault) = &self.fault {
            if fault.consume(1).is_some() {
                return Err(injected());
            }
        }
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_write_lands_a_prefix_then_fails() {
        let path = std::env::temp_dir().join(format!("weaver-fault-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fault = FaultState::arm(4);
        let mut f = FaultFile::open(&path, Some(fault.clone())).unwrap();
        let err = f.write_all_at(0, b"abcdefgh").unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert_eq!(fault.trips(), 1);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        // Every later operation fails immediately: the budget stays spent.
        assert!(f.write_all_at(0, b"x").is_err());
        assert!(f.sync().is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disarmed_state_passes_writes_through() {
        let path = std::env::temp_dir().join(format!("weaver-fault2-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut f = FaultFile::open(&path, Some(FaultState::disarmed())).unwrap();
        f.write_all_at(0, b"hello").unwrap();
        f.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        let _ = std::fs::remove_file(&path);
    }
}
