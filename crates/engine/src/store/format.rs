//! On-disk layout of the paged artifact store.
//!
//! One store is two files in the cache directory:
//!
//! * `store.wvs` — the page file. Page 0 is the header page; pages
//!   `1..page_count` hold artifact payloads as singly-linked chains.
//! * `store.wal` — the write-ahead log (see [`super::wal`]).
//!
//! ## Header page (page 0)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "WVSTORE1"
//!      8     4  format version (little-endian u32, currently 1)
//!     12     4  page size in bytes
//!     16     8  page count (including this header page)
//!     24     8  checksum64 over bytes 0..24
//! ```
//!
//! ## Data pages
//!
//! ```text
//! offset  size  field
//!      0     8  checksum64 over bytes 8..page_size
//!      8     1  state: 0 free · 1 head · 2 continuation
//!      9     4  payload bytes stored in this page
//!     13     8  next page id (0 = end of chain)
//!     21     8  LSN of the record that wrote the page
//! -- head pages only --
//!     29    32  artifact key (BLAKE2s-256 of the compile job)
//!     61     8  total payload length of the chain
//!     69    32  BLAKE2s-256 of the whole payload
//!    104     —  payload
//! -- continuation pages --
//!     32     —  payload
//! ```
//!
//! An all-zero page is *free by construction* (fresh growth is never
//! written), so file extension needs no formatting pass. Any other page
//! whose checksum fails verification is quarantined: counted, reported as
//! a miss, and reclaimed for reuse — never a panic.

use weaver_core::cache::{Blake2s, Digest};

/// Magic bytes opening the page file.
pub const STORE_MAGIC: [u8; 8] = *b"WVSTORE1";
/// Magic bytes opening the WAL.
pub const WAL_MAGIC: [u8; 8] = *b"WVWAL001";
/// On-disk format version (bumped on incompatible layout changes).
pub const FORMAT_VERSION: u32 = 1;
/// Default page size; store files remember their own in the header.
pub const DEFAULT_PAGE_SIZE: u32 = 4096;
/// Smallest supported page size (the head-page header plus one byte).
pub const MIN_PAGE_SIZE: u32 = 128;
/// Byte length of the store-file header (the rest of page 0 is zero).
pub const HEADER_LEN: usize = 32;
/// Byte length of the WAL header.
pub const WAL_HEADER_LEN: u64 = 16;

/// Payload offset inside a head page.
pub const HEAD_PAYLOAD_OFF: usize = 104;
/// Payload offset inside a continuation page.
pub const CONT_PAYLOAD_OFF: usize = 32;

/// Page states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageState {
    /// Unused; reclaimable.
    Free,
    /// First page of an artifact chain; carries key and content digest.
    Head,
    /// Later page of a chain.
    Cont,
}

impl PageState {
    fn from_byte(b: u8) -> Option<PageState> {
        match b {
            0 => Some(PageState::Free),
            1 => Some(PageState::Head),
            2 => Some(PageState::Cont),
            _ => None,
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            PageState::Free => 0,
            PageState::Head => 1,
            PageState::Cont => 2,
        }
    }
}

/// First 8 bytes of BLAKE2s-256 as a little-endian u64 — the page and WAL
/// record checksum.
pub fn sum64(parts: &[&[u8]]) -> u64 {
    let mut h = Blake2s::new();
    for p in parts {
        h.update(p);
    }
    let Digest(bytes) = h.finalize();
    u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"))
}

/// Full BLAKE2s-256 of a payload (the chain content digest).
pub fn content_digest(payload: &[u8]) -> Digest {
    let mut h = Blake2s::new();
    h.update(payload);
    h.finalize()
}

/// Renders the store-file header page.
pub fn encode_header(page_size: u32, page_count: u64) -> Vec<u8> {
    let mut page = vec![0u8; page_size as usize];
    page[0..8].copy_from_slice(&STORE_MAGIC);
    page[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    page[12..16].copy_from_slice(&page_size.to_le_bytes());
    page[16..24].copy_from_slice(&page_count.to_le_bytes());
    let cs = sum64(&[&page[0..24]]);
    page[24..32].copy_from_slice(&cs.to_le_bytes());
    page
}

/// Parsed store-file header.
#[derive(Clone, Copy, Debug)]
pub struct Header {
    /// Page size recorded at store creation.
    pub page_size: u32,
    /// Page count at the last checkpoint (advisory — the file length is
    /// authoritative after a crash between growth and checkpoint).
    pub page_count: u64,
}

/// Parses and verifies the header; `None` means the header is damaged and
/// recovery should rebuild it.
pub fn decode_header(bytes: &[u8]) -> Option<Header> {
    if bytes.len() < HEADER_LEN || bytes[0..8] != STORE_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let page_size = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
    let page_count = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    let cs = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
    if cs != sum64(&[&bytes[0..24]]) || page_size < MIN_PAGE_SIZE {
        return None;
    }
    Some(Header {
        page_size,
        page_count,
    })
}

/// Decoded view of one data page.
#[derive(Clone, Debug)]
pub struct PageView {
    /// Page state.
    pub state: PageState,
    /// Payload bytes stored in this page.
    pub payload_len: u32,
    /// Next page of the chain (0 = end).
    pub next: u64,
    /// LSN of the writing record.
    pub lsn: u64,
    /// Head pages: the artifact key.
    pub key: Option<Digest>,
    /// Head pages: total chain payload length.
    pub total_len: u64,
    /// Head pages: BLAKE2s-256 over the whole chain payload.
    pub content: Option<Digest>,
}

/// Payload capacity of a head page.
pub fn head_capacity(page_size: u32) -> usize {
    page_size as usize - HEAD_PAYLOAD_OFF
}

/// Payload capacity of a continuation page.
pub fn cont_capacity(page_size: u32) -> usize {
    page_size as usize - CONT_PAYLOAD_OFF
}

/// Pages needed to hold `len` payload bytes.
pub fn pages_for(len: usize, page_size: u32) -> usize {
    let head = head_capacity(page_size);
    if len <= head {
        1
    } else {
        1 + (len - head).div_ceil(cont_capacity(page_size))
    }
}

fn seal(mut page: Vec<u8>) -> Vec<u8> {
    let cs = sum64(&[&page[8..]]);
    page[0..8].copy_from_slice(&cs.to_le_bytes());
    page
}

/// Renders a head page.
pub fn encode_head(
    page_size: u32,
    key: &Digest,
    total_len: u64,
    content: &Digest,
    payload: &[u8],
    next: u64,
    lsn: u64,
) -> Vec<u8> {
    debug_assert!(payload.len() <= head_capacity(page_size));
    let mut page = vec![0u8; page_size as usize];
    page[8] = PageState::Head.to_byte();
    page[9..13].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[13..21].copy_from_slice(&next.to_le_bytes());
    page[21..29].copy_from_slice(&lsn.to_le_bytes());
    page[29..61].copy_from_slice(&key.0);
    page[61..69].copy_from_slice(&total_len.to_le_bytes());
    page[69..101].copy_from_slice(&content.0);
    page[HEAD_PAYLOAD_OFF..HEAD_PAYLOAD_OFF + payload.len()].copy_from_slice(payload);
    seal(page)
}

/// Renders a continuation page.
pub fn encode_cont(page_size: u32, payload: &[u8], next: u64, lsn: u64) -> Vec<u8> {
    debug_assert!(payload.len() <= cont_capacity(page_size));
    let mut page = vec![0u8; page_size as usize];
    page[8] = PageState::Cont.to_byte();
    page[9..13].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    page[13..21].copy_from_slice(&next.to_le_bytes());
    page[21..29].copy_from_slice(&lsn.to_le_bytes());
    page[CONT_PAYLOAD_OFF..CONT_PAYLOAD_OFF + payload.len()].copy_from_slice(payload);
    seal(page)
}

/// Renders an explicitly freed page (deletes rewrite the head this way so
/// the free state survives a checkpointed WAL).
pub fn encode_free(page_size: u32, lsn: u64) -> Vec<u8> {
    let mut page = vec![0u8; page_size as usize];
    page[8] = PageState::Free.to_byte();
    page[21..29].copy_from_slice(&lsn.to_le_bytes());
    seal(page)
}

/// Classification of a raw page during a scan.
#[derive(Clone, Debug)]
pub enum PageScan {
    /// Never written (all zero) — free by construction.
    Blank,
    /// Checksum-valid page.
    Valid(PageView),
    /// Checksum or structure failure — quarantined.
    Corrupt,
}

/// Decodes and verifies one data page.
pub fn decode_page(bytes: &[u8]) -> PageScan {
    if bytes.iter().all(|&b| b == 0) {
        return PageScan::Blank;
    }
    let cs = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    if cs != sum64(&[&bytes[8..]]) {
        return PageScan::Corrupt;
    }
    let Some(state) = PageState::from_byte(bytes[8]) else {
        return PageScan::Corrupt;
    };
    let payload_len = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes"));
    let next = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
    let lsn = u64::from_le_bytes(bytes[21..29].try_into().expect("8 bytes"));
    let cap = match state {
        PageState::Head => head_capacity(bytes.len() as u32),
        PageState::Cont => cont_capacity(bytes.len() as u32),
        PageState::Free => 0,
    };
    if payload_len as usize > cap {
        return PageScan::Corrupt;
    }
    let (key, total_len, content) = if state == PageState::Head {
        let mut key = [0u8; 32];
        key.copy_from_slice(&bytes[29..61]);
        let total_len = u64::from_le_bytes(bytes[61..69].try_into().expect("8 bytes"));
        let mut content = [0u8; 32];
        content.copy_from_slice(&bytes[69..101]);
        (Some(Digest(key)), total_len, Some(Digest(content)))
    } else {
        (None, 0, None)
    };
    PageScan::Valid(PageView {
        state,
        payload_len,
        next,
        lsn,
        key,
        total_len,
        content,
    })
}

/// The payload slice of a decoded page.
pub fn page_payload<'a>(bytes: &'a [u8], view: &PageView) -> &'a [u8] {
    let off = match view.state {
        PageState::Head => HEAD_PAYLOAD_OFF,
        _ => CONT_PAYLOAD_OFF,
    };
    &bytes[off..off + view.payload_len as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8) -> Digest {
        Digest([tag; 32])
    }

    #[test]
    fn header_roundtrips_and_rejects_damage() {
        let page = encode_header(4096, 17);
        let h = decode_header(&page).expect("valid header");
        assert_eq!(h.page_size, 4096);
        assert_eq!(h.page_count, 17);
        let mut bad = page.clone();
        bad[16] ^= 1; // flip a page-count bit
        assert!(decode_header(&bad).is_none());
        assert!(decode_header(&page[..16]).is_none());
    }

    #[test]
    fn pages_roundtrip_and_checksum_catches_flips() {
        let payload = vec![7u8; 100];
        let page = encode_head(
            256,
            &key(1),
            300,
            &content_digest(&payload),
            &payload,
            9,
            42,
        );
        match decode_page(&page) {
            PageScan::Valid(v) => {
                assert_eq!(v.state, PageState::Head);
                assert_eq!(v.payload_len, 100);
                assert_eq!(v.next, 9);
                assert_eq!(v.lsn, 42);
                assert_eq!(v.key, Some(key(1)));
                assert_eq!(v.total_len, 300);
                assert_eq!(page_payload(&page, &v), &payload[..]);
            }
            other => panic!("expected valid page, got {other:?}"),
        }
        for idx in [0, 8, 30, 200] {
            let mut bad = page.clone();
            bad[idx] ^= 0x40;
            assert!(
                matches!(decode_page(&bad), PageScan::Corrupt),
                "flip at {idx} must quarantine"
            );
        }
        assert!(matches!(decode_page(&vec![0u8; 256]), PageScan::Blank));
    }

    #[test]
    fn capacity_math_covers_the_boundaries() {
        assert_eq!(pages_for(0, 256), 1);
        assert_eq!(pages_for(head_capacity(256), 256), 1);
        assert_eq!(pages_for(head_capacity(256) + 1, 256), 2);
        assert_eq!(pages_for(head_capacity(256) + cont_capacity(256), 256), 2);
        assert_eq!(
            pages_for(head_capacity(256) + cont_capacity(256) + 1, 256),
            3
        );
    }
}
