//! Page-granular I/O over the store file plus the in-process buffer pool.
//!
//! The [`PageFile`] is a thin positional-I/O view of `store.wvs`; the
//! [`BufferPool`] keeps recently touched pages in memory under LRU
//! eviction so chain reads of hot artifacts never touch the file. The
//! pool is write-through: `Store` applies WAL records straight to the
//! file and mirrors the images here, so pooled pages are never dirty and
//! eviction is free — exactly the property that keeps a crash from ever
//! losing pool-only state.

use super::fault::{FaultFile, FaultState};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Positional page I/O over the store file.
#[derive(Debug)]
pub struct PageFile {
    file: FaultFile,
    page_size: u32,
}

impl PageFile {
    /// Opens (creating if absent) the page file.
    pub fn open(
        path: &Path,
        page_size: u32,
        fault: Option<Arc<FaultState>>,
    ) -> std::io::Result<Self> {
        Ok(PageFile {
            file: FaultFile::open(path, fault)?,
            page_size,
        })
    }

    /// Whole pages currently backed by the file (a trailing partial page —
    /// a torn grow — counts, and reads of it zero-fill).
    pub fn len_pages(&self) -> std::io::Result<u64> {
        Ok(self.file.len()?.div_ceil(self.page_size as u64))
    }

    /// File length in bytes.
    pub fn len_bytes(&self) -> std::io::Result<u64> {
        self.file.len()
    }

    /// Reads page `pid`, zero-filling anything past the physical end of
    /// file (pages past a crash-torn grow read as blank, i.e. free).
    pub fn read_page(&mut self, pid: u64) -> std::io::Result<Vec<u8>> {
        let ps = self.page_size as u64;
        let offset = pid * ps;
        let file_len = self.file.len()?;
        let mut page = vec![0u8; self.page_size as usize];
        if offset >= file_len {
            return Ok(page);
        }
        let avail = ((file_len - offset).min(ps)) as usize;
        self.file.read_exact_at(offset, &mut page[..avail])?;
        Ok(page)
    }

    /// Writes a full page image at `pid` (growing the file as needed).
    pub fn write_page(&mut self, pid: u64, image: &[u8]) -> std::io::Result<()> {
        debug_assert_eq!(image.len(), self.page_size as usize);
        self.file.write_all_at(pid * self.page_size as u64, image)
    }

    /// Fsyncs the file (the checkpoint barrier).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync()
    }
}

/// A clean-page LRU cache keyed by page id.
#[derive(Debug)]
pub struct BufferPool {
    pages: HashMap<u64, PoolEntry>,
    capacity: usize,
    clock: u64,
    evictions: u64,
}

#[derive(Debug)]
struct PoolEntry {
    image: Arc<Vec<u8>>,
    stamp: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            pages: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            evictions: 0,
        }
    }

    /// Fetches a pooled page, refreshing its LRU stamp.
    pub fn get(&mut self, pid: u64) -> Option<Arc<Vec<u8>>> {
        self.clock += 1;
        let clock = self.clock;
        self.pages.get_mut(&pid).map(|e| {
            e.stamp = clock;
            e.image.clone()
        })
    }

    /// Inserts (or replaces) a page image, evicting the least recently
    /// used page when over capacity.
    pub fn insert(&mut self, pid: u64, image: Arc<Vec<u8>>) {
        self.clock += 1;
        let stamp = self.clock;
        self.pages.insert(pid, PoolEntry { image, stamp });
        while self.pages.len() > self.capacity {
            let oldest = self
                .pages
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(pid, _)| *pid)
                .expect("nonempty pool");
            self.pages.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Drops a page (freed or rewritten on disk).
    pub fn remove(&mut self, pid: u64) {
        self.pages.remove(&pid);
    }

    /// Drops everything (compaction renumbers pages).
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Cumulative LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_evicts_least_recently_used() {
        let mut pool = BufferPool::new(2);
        pool.insert(1, Arc::new(vec![1]));
        pool.insert(2, Arc::new(vec![2]));
        assert!(pool.get(1).is_some()); // refresh 1
        pool.insert(3, Arc::new(vec![3])); // evicts 2
        assert!(pool.get(1).is_some());
        assert!(pool.get(2).is_none());
        assert!(pool.get(3).is_some());
        assert_eq!(pool.evictions(), 1);
    }

    #[test]
    fn reads_past_eof_are_blank() {
        let d = std::env::temp_dir().join(format!(
            "weaver-pager-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        let mut pf = PageFile::open(&d.join("store.wvs"), 128, None).unwrap();
        assert_eq!(pf.len_pages().unwrap(), 0);
        pf.write_page(2, &[7u8; 128]).unwrap();
        assert_eq!(pf.len_pages().unwrap(), 3);
        assert_eq!(pf.read_page(1).unwrap(), vec![0u8; 128]);
        assert_eq!(pf.read_page(2).unwrap(), vec![7u8; 128]);
        assert_eq!(pf.read_page(9).unwrap(), vec![0u8; 128]);
        let _ = std::fs::remove_dir_all(&d);
    }
}
