//! The write-ahead log.
//!
//! Every mutation of the page file is first appended here as one
//! length-prefixed, checksummed, LSN-stamped record and fsynced; only then
//! are pages written. A record whose fsync returned is *committed*: crash
//! at any later point and recovery replays it. A record cut short by a
//! crash mid-append fails its length or checksum check and the whole tail
//! from that point is discarded — the put simply never happened.
//!
//! ```text
//! file   = header · record*
//! header = magic "WVWAL001" · version u32 · page_size u32       (16 bytes)
//! record = body_len u32 · checksum64(body) u64 · body
//! body   = lsn u64 · kind u8 · key [32] · kind-specific fields
//!   kind 1 (put):    total_len u64 · content [32] · old_head u64
//!                    · n_pages u32 · page_id u64 × n_pages · payload
//!   kind 2 (delete): head_page u64
//! ```
//!
//! A put that replaces an existing chain records the old head page
//! (`old_head`, 0 when the key is new) and frees it on apply, so a stale
//! head can never resurrect a superseded or deleted value after recovery.
//!
//! A checkpoint (fsync the page file, then truncate the WAL back to its
//! header) bounds replay work; the log never needs compaction of its own.

use super::fault::{FaultFile, FaultState};
use super::format::{sum64, FORMAT_VERSION, WAL_HEADER_LEN, WAL_MAGIC};
use std::path::Path;
use std::sync::Arc;
use weaver_core::cache::Digest;

/// One committed WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Write an artifact as a chain over `pages` (in chain order).
    Put {
        /// Log sequence number.
        lsn: u64,
        /// Artifact key.
        key: Digest,
        /// Total payload length.
        total_len: u64,
        /// BLAKE2s-256 of the payload.
        content: Digest,
        /// Head page of the chain this put replaces (0 = new key); freed
        /// on apply so superseded values cannot resurrect.
        old_head: u64,
        /// Page ids of the chain, head first.
        pages: Vec<u64>,
        /// The full payload (pages derive their slices deterministically).
        payload: Vec<u8>,
    },
    /// Remove an artifact (rewrites its head page as free).
    Delete {
        /// Log sequence number.
        lsn: u64,
        /// Artifact key.
        key: Digest,
        /// Head page of the chain being freed.
        head_page: u64,
    },
}

impl WalRecord {
    /// The record's LSN.
    pub fn lsn(&self) -> u64 {
        match self {
            WalRecord::Put { lsn, .. } | WalRecord::Delete { lsn, .. } => *lsn,
        }
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            WalRecord::Put {
                lsn,
                key,
                total_len,
                content,
                old_head,
                pages,
                payload,
            } => {
                b.extend_from_slice(&lsn.to_le_bytes());
                b.push(1);
                b.extend_from_slice(&key.0);
                b.extend_from_slice(&total_len.to_le_bytes());
                b.extend_from_slice(&content.0);
                b.extend_from_slice(&old_head.to_le_bytes());
                b.extend_from_slice(&(pages.len() as u32).to_le_bytes());
                for p in pages {
                    b.extend_from_slice(&p.to_le_bytes());
                }
                b.extend_from_slice(payload);
            }
            WalRecord::Delete {
                lsn,
                key,
                head_page,
            } => {
                b.extend_from_slice(&lsn.to_le_bytes());
                b.push(2);
                b.extend_from_slice(&key.0);
                b.extend_from_slice(&head_page.to_le_bytes());
            }
        }
        b
    }

    fn decode_body(b: &[u8]) -> Option<WalRecord> {
        if b.len() < 41 {
            return None;
        }
        let lsn = u64::from_le_bytes(b[0..8].try_into().ok()?);
        let kind = b[8];
        let mut key = [0u8; 32];
        key.copy_from_slice(&b[9..41]);
        let key = Digest(key);
        match kind {
            1 => {
                if b.len() < 93 {
                    return None;
                }
                let total_len = u64::from_le_bytes(b[41..49].try_into().ok()?);
                let mut content = [0u8; 32];
                content.copy_from_slice(&b[49..81]);
                let old_head = u64::from_le_bytes(b[81..89].try_into().ok()?);
                let n_pages = u32::from_le_bytes(b[89..93].try_into().ok()?) as usize;
                let pages_end = 93usize.checked_add(n_pages.checked_mul(8)?)?;
                if b.len() < pages_end {
                    return None;
                }
                let pages: Vec<u64> = (0..n_pages)
                    .map(|i| u64::from_le_bytes(b[93 + 8 * i..101 + 8 * i].try_into().unwrap()))
                    .collect();
                let payload = b[pages_end..].to_vec();
                if payload.len() as u64 != total_len || pages.is_empty() {
                    return None;
                }
                Some(WalRecord::Put {
                    lsn,
                    key,
                    total_len,
                    content: Digest(content),
                    old_head,
                    pages,
                    payload,
                })
            }
            2 => {
                if b.len() != 49 {
                    return None;
                }
                let head_page = u64::from_le_bytes(b[41..49].try_into().ok()?);
                Some(WalRecord::Delete {
                    lsn,
                    key,
                    head_page,
                })
            }
            _ => None,
        }
    }
}

/// What `Wal::open` found on disk.
#[derive(Debug, Default)]
pub struct WalOpen {
    /// Committed records, in append (= LSN) order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail discarded after the last committed record.
    pub torn_bytes: u64,
    /// Whether the header itself was missing or damaged and got rebuilt.
    pub header_rebuilt: bool,
}

/// The write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: FaultFile,
    /// Append position (end of the last committed record).
    end: u64,
}

impl Wal {
    /// Opens (creating if absent) the WAL, returning every committed
    /// record and discarding any torn tail.
    pub fn open(
        path: &Path,
        page_size: u32,
        fault: Option<Arc<FaultState>>,
    ) -> std::io::Result<(Wal, WalOpen)> {
        let mut file = FaultFile::open(path, fault)?;
        let len = file.len()?;
        let mut found = WalOpen::default();

        let mut bytes = vec![0u8; len as usize];
        if len > 0 {
            file.read_exact_at(0, &mut bytes)?;
        }
        let header_ok = len >= WAL_HEADER_LEN
            && bytes[0..8] == WAL_MAGIC
            && u32::from_le_bytes(bytes[8..12].try_into().unwrap()) == FORMAT_VERSION;
        if !header_ok {
            found.header_rebuilt = len != 0;
            found.torn_bytes = len;
            let mut wal = Wal { file, end: 0 };
            wal.write_header(page_size)?;
            return Ok((wal, found));
        }

        let mut pos = WAL_HEADER_LEN as usize;
        loop {
            let rest = &bytes[pos..];
            if rest.len() < 12 {
                break;
            }
            let body_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
            let cs = u64::from_le_bytes(rest[4..12].try_into().unwrap());
            if rest.len() < 12 + body_len {
                break;
            }
            let body = &rest[12..12 + body_len];
            if sum64(&[body]) != cs {
                break;
            }
            let Some(record) = WalRecord::decode_body(body) else {
                break;
            };
            found.records.push(record);
            pos += 12 + body_len;
        }
        found.torn_bytes = len - pos as u64;
        let wal = Wal {
            file,
            end: pos as u64,
        };
        Ok((wal, found))
    }

    fn write_header(&mut self, page_size: u32) -> std::io::Result<()> {
        let mut h = [0u8; WAL_HEADER_LEN as usize];
        h[0..8].copy_from_slice(&WAL_MAGIC);
        h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        h[12..16].copy_from_slice(&page_size.to_le_bytes());
        self.file.set_len(0)?;
        self.file.write_all_at(0, &h)?;
        self.file.sync()?;
        self.end = WAL_HEADER_LEN;
        Ok(())
    }

    /// Appends and fsyncs one record; on return the record is committed.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Appends every record in one write followed by a *single* fsync —
    /// the group-commit primitive: the whole batch shares one commit
    /// point. Each record keeps its own length + checksum frame, so a
    /// crash mid-append commits exactly the undamaged prefix.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut frames = Vec::new();
        for record in records {
            let body = record.encode_body();
            frames.reserve(12 + body.len());
            frames.extend_from_slice(&(body.len() as u32).to_le_bytes());
            frames.extend_from_slice(&sum64(&[&body]).to_le_bytes());
            frames.extend_from_slice(&body);
        }
        self.file.write_all_at(self.end, &frames)?;
        self.file.sync()?;
        self.end += frames.len() as u64;
        Ok(())
    }

    /// Truncates the log back to its header (the checkpoint tail step; the
    /// page file must already be fsynced).
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.sync()?;
        self.end = WAL_HEADER_LEN;
        Ok(())
    }

    /// Bytes of committed log (header included).
    pub fn len(&self) -> u64 {
        self.end
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.end <= WAL_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "weaver-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn put(lsn: u64, tag: u8, payload: &[u8]) -> WalRecord {
        WalRecord::Put {
            lsn,
            key: Digest([tag; 32]),
            total_len: payload.len() as u64,
            content: super::super::format::content_digest(payload),
            old_head: 0,
            pages: vec![1, 2, 3],
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let d = dir();
        let path = d.join("store.wal");
        let (mut wal, open) = Wal::open(&path, 256, None).unwrap();
        assert!(open.records.is_empty());
        wal.append(&put(1, 1, b"first")).unwrap();
        wal.append(&put(2, 2, b"second")).unwrap();
        wal.append(&WalRecord::Delete {
            lsn: 3,
            key: Digest([1; 32]),
            head_page: 1,
        })
        .unwrap();
        drop(wal);
        let (_, open) = Wal::open(&path, 256, None).unwrap();
        assert_eq!(open.records.len(), 3);
        assert_eq!(open.records[0], put(1, 1, b"first"));
        assert_eq!(open.records[2].lsn(), 3);
        assert_eq!(open.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_cut() {
        let d = dir();
        let path = d.join("store.wal");
        let (mut wal, _) = Wal::open(&path, 256, None).unwrap();
        wal.append(&put(1, 1, b"committed")).unwrap();
        wal.append(&put(2, 2, b"doomed record with a longer payload"))
            .unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cut the file anywhere inside the second record: exactly one
        // record must survive.
        let first_end = {
            let body_len = u32::from_le_bytes(full[16..20].try_into().unwrap()) as usize;
            16 + 12 + body_len
        };
        for cut in [first_end + 1, first_end + 11, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, open) = Wal::open(&path, 256, None).unwrap();
            assert_eq!(open.records.len(), 1, "cut at {cut}");
            assert_eq!(open.torn_bytes, (cut - first_end) as u64);
        }
        // Flipping a byte inside the second body also drops it.
        let mut flipped = full.clone();
        let idx = first_end + 20;
        flipped[idx] ^= 0xff;
        std::fs::write(&path, &flipped).unwrap();
        let (_, open) = Wal::open(&path, 256, None).unwrap();
        assert_eq!(open.records.len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn truncate_resets_to_header_only() {
        let d = dir();
        let path = d.join("store.wal");
        let (mut wal, _) = Wal::open(&path, 256, None).unwrap();
        wal.append(&put(1, 1, b"x")).unwrap();
        assert!(!wal.is_empty());
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        drop(wal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), WAL_HEADER_LEN);
        let (_, open) = Wal::open(&path, 256, None).unwrap();
        assert!(open.records.is_empty());
        let _ = std::fs::remove_dir_all(&d);
    }
}
