//! The batch engine: drives [`CompileJob`]s through the work-stealing pool,
//! consults the artifact cache, contains per-job panics, and reports
//! structured results.

use crate::cache::{ArtifactCache, CacheConfig, CacheTierStats};
use crate::job::{
    Artifact, CacheOutcome, CompileJob, JobError, JobErrorKind, JobResult, JobSource, StageTimings,
};
use crate::jsonl::JsonObject;
use crate::pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use weaver_core::cache::CacheStats;
use weaver_core::{CodegenOptions, FrontendRegistry, Weaver, Workload};
use weaver_obs::{log, metrics, span, Counter, Histogram};
use weaver_sat::qaoa::QaoaParams;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads; `0` uses the machine's available parallelism.
    pub jobs: usize,
    /// Artifact-cache tiers.
    pub cache: CacheConfig,
    /// Whether to consult/populate the artifact cache at all.
    pub use_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            cache: CacheConfig::default(),
            use_cache: true,
        }
    }
}

/// Outcome of one batch run: per-job results in submission order plus
/// batch-level throughput and cache statistics.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in submission order.
    pub results: Vec<JobResult>,
    /// End-to-end wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Artifact-cache tier counters (cumulative over the engine's life).
    pub tier_stats: CacheTierStats,
    /// `weaver-core` memo counters (clause plans, checker traces).
    pub core_stats: CacheStats,
    /// Why the disk tier was disabled at engine construction, if it was
    /// (surfaced in the `batch` JSONL record as `disk_disabled`).
    pub disk_disabled: Option<String>,
}

impl BatchReport {
    /// Jobs that produced an artifact (and passed the checker, if run).
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.succeeded()).count()
    }

    /// Jobs that failed.
    pub fn failed(&self) -> usize {
        self.results.len() - self.succeeded()
    }

    /// Jobs served from the artifact cache without recompiling.
    pub fn cache_hits(&self) -> usize {
        self.results.iter().filter(|r| r.cache.is_hit()).count()
    }

    /// Batch throughput in jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.results.len() as f64 / self.wall_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Renders the whole report as JSONL: one `job` record per result plus
    /// a trailing `batch` summary record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&job_record(r));
            out.push('\n');
        }
        out.push_str(&self.batch_record());
        out.push('\n');
        out
    }

    /// The trailing `batch` summary JSON record.
    pub fn batch_record(&self) -> String {
        let tiers = JsonObject::new()
            .u64("memory_hits", self.tier_stats.memory_hits)
            .u64("disk_hits", self.tier_stats.disk_hits)
            .u64("misses", self.tier_stats.misses)
            .u64("evictions", self.tier_stats.evictions)
            .u64("disk_write_errors", self.tier_stats.disk_write_errors)
            .u64("checksum_failures", self.tier_stats.checksum_failures)
            .u64("wal_replayed", self.tier_stats.wal_replayed)
            .u64("recoveries", self.tier_stats.recoveries)
            .u64("buffer_evictions", self.tier_stats.buffer_evictions)
            .u64("migrated_legacy", self.tier_stats.migrated_legacy)
            .finish();
        let core = JsonObject::new()
            .u64("checker_hits", self.core_stats.checker_hits)
            .u64("checker_misses", self.core_stats.checker_misses)
            .u64("plan_hits", self.core_stats.plan_hits)
            .u64("plan_misses", self.core_stats.plan_misses)
            .finish();
        let mut record = JsonObject::new()
            .str("kind", "batch")
            .u64("jobs", self.results.len() as u64)
            .u64("workers", self.workers as u64)
            .u64("succeeded", self.succeeded() as u64)
            .u64("failed", self.failed() as u64)
            .u64("cache_hits", self.cache_hits() as u64)
            .f64("wall_seconds", self.wall_seconds)
            .f64("jobs_per_sec", self.jobs_per_sec())
            .raw("artifact_cache", &tiers)
            .raw("core_cache", &core);
        if let Some(reason) = &self.disk_disabled {
            record = record
                .bool("disk_disabled", true)
                .str("disk_disabled_reason", reason);
        }
        record.finish()
    }
}

/// Renders one job result as a JSONL `job` record (also used for live
/// streaming as jobs finish). Successful records carry the producing
/// compile's per-pass timing trace as a `passes` array (name, seconds,
/// steps per lowering pass, in execution order).
pub fn job_record(r: &JobResult) -> String {
    job_record_fields(r).finish()
}

/// The builder behind [`job_record`], left unfinished so callers (the
/// server response path) can append fields like a request `id` before
/// closing the object.
pub fn job_record_fields(r: &JobResult) -> JsonObject {
    let timings = JsonObject::new()
        .f64("parse_seconds", r.timings.parse_seconds)
        .f64("compile_seconds", r.timings.compile_seconds)
        .f64("check_seconds", r.timings.check_seconds)
        .f64("total_seconds", r.timings.total_seconds)
        .finish();
    let mut record = JsonObject::new()
        .str("kind", "job")
        .u64("index", r.index as u64)
        .str("name", &r.name)
        .str("target", r.target.name())
        .str("key", &r.key)
        .str("cache", r.cache.name())
        .raw("timings", &timings);
    match &r.artifact {
        Ok(a) => {
            let m = &a.metrics;
            let metrics = JsonObject::new()
                .f64("compilation_seconds", m.compilation_seconds)
                .f64("execution_micros", m.execution_micros)
                .f64("eps", m.eps)
                .u64("pulses", m.pulses as u64)
                .u64("motion_ops", m.motion_ops as u64)
                .u64("steps", m.steps)
                .finish();
            let passes: Vec<String> = a
                .passes
                .iter()
                .map(|p| {
                    JsonObject::new()
                        .str("name", &p.name)
                        .f64("seconds", p.seconds)
                        .u64("steps", p.steps)
                        .finish()
                })
                .collect();
            record = record
                .str("status", if r.succeeded() { "ok" } else { "check_failed" })
                .raw("metrics", &metrics)
                .raw("passes", &format!("[{}]", passes.join(",")));
            if let Some(c) = a.num_colors {
                record = record.u64("num_colors", c as u64);
            }
            if let Some(s) = a.swap_count {
                record = record.u64("swap_count", s as u64);
            }
            if let Some(p) = a.check_passed {
                record = record.bool("check_passed", p);
            }
            if !a.check_errors.is_empty() {
                record = record.str_array("check_errors", &a.check_errors);
            }
        }
        Err(e) => {
            record = record
                .str("status", "error")
                .str("error_kind", e.kind.name())
                .str("error", &e.message);
        }
    }
    record
}

/// Process-global job metric handles, resolved once per engine so the
/// per-job accounting is plain atomics. The `outcome` label mirrors
/// [`CacheOutcome::name`] plus `error` for failed jobs.
struct EngineMetrics {
    /// Counters in label order: memory_hit, disk_hit, miss, bypass, error.
    jobs_total: [Arc<Counter>; 5],
    job_duration: Arc<Histogram>,
}

impl EngineMetrics {
    const OUTCOMES: [&'static str; 5] = ["memory_hit", "disk_hit", "miss", "bypass", "error"];

    fn new() -> Self {
        EngineMetrics {
            jobs_total: EngineMetrics::OUTCOMES.map(|outcome| {
                metrics::counter_with(
                    "weaver_jobs_total",
                    "Batch jobs completed, by cache outcome (`error` = failed).",
                    &[("outcome", outcome)],
                )
            }),
            job_duration: metrics::latency_histogram(
                "weaver_job_duration_seconds",
                "End-to-end duration of one batch job, cache lookups included.",
            ),
        }
    }

    fn record(&self, outcome: &'static str, seconds: f64) {
        let idx = EngineMetrics::OUTCOMES
            .iter()
            .position(|o| *o == outcome)
            .unwrap_or(4);
        self.jobs_total[idx].inc();
        self.job_duration.observe(seconds);
    }
}

/// The parallel batch-compilation engine. One engine owns one artifact
/// cache; running several batches on the same engine keeps the cache warm.
pub struct Engine {
    config: EngineConfig,
    cache: ArtifactCache,
    disk_disabled: Option<String>,
    metrics: EngineMetrics,
}

impl Engine {
    /// Builds an engine. If the configured disk tier cannot be created the
    /// engine degrades to memory-only caching: a warning goes to stderr and
    /// every batch record it emits carries `disk_disabled` with the reason
    /// (use [`Engine::try_new`] to make that an error instead).
    pub fn new(config: EngineConfig) -> Self {
        match Engine::try_new(config.clone()) {
            Ok(engine) => engine,
            Err(e) => {
                let reason = e.to_string();
                log::warn("weaver-engine", &format!("disk cache disabled: {reason}"));
                let mut fallback = config;
                fallback.cache.disk_dir = None;
                let mut engine =
                    Engine::try_new(fallback).expect("memory-only cache is infallible");
                engine.disk_disabled = Some(reason);
                engine
            }
        }
    }

    /// Builds an engine, propagating disk-tier setup failures.
    pub fn try_new(config: EngineConfig) -> std::io::Result<Self> {
        let cache = ArtifactCache::new(config.cache.clone())?;
        Ok(Engine {
            config,
            cache,
            disk_disabled: None,
            metrics: EngineMetrics::new(),
        })
    }

    /// The artifact cache (stats, pre-warming).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Worker-thread count a run will use.
    pub fn workers(&self) -> usize {
        if self.config.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.jobs
        }
    }

    /// Compiles a batch; results come back in submission order.
    pub fn run(&self, jobs: Vec<CompileJob>) -> BatchReport {
        self.run_streaming(jobs, &|_| {})
    }

    /// Compiles a batch, invoking `sink` on each result as it completes
    /// (completion order — use [`JobResult::index`] to correlate). The
    /// returned report is always in submission order.
    pub fn run_streaming(
        &self,
        jobs: Vec<CompileJob>,
        sink: &(dyn Fn(&JobResult) + Sync),
    ) -> BatchReport {
        let workers = self.workers();
        let start = Instant::now();
        let results = pool::run_jobs(jobs, workers, |index, job| {
            let result = self.run_job(index, job);
            sink(&result);
            result
        });
        BatchReport {
            results,
            wall_seconds: start.elapsed().as_secs_f64(),
            workers,
            tier_stats: self.cache.stats(),
            core_stats: self.cache.core_handle().stats(),
            disk_disabled: self.disk_disabled.clone(),
        }
    }

    /// Runs one job end to end: load → key → cache lookup → compile →
    /// (check) → store. Panics inside the compiler are contained and
    /// reported as structured `compile` errors. `pub(crate)` so the server
    /// can drive single jobs through its persistent pool.
    pub(crate) fn run_job(&self, index: usize, job: CompileJob) -> JobResult {
        let total_start = Instant::now();
        let name = job.name();
        let target = job.target.clone();
        let mut timings = StageTimings::default();
        // The job span lives on the worker thread, so the per-pass spans
        // the compiler emits nest under it via the thread-local stack.
        let mut job_span = span::span("job", name.clone())
            .with_arg("index", index)
            .with_arg("target", target.name());

        let workload = match load_workload(&job.source, job.frontend.as_deref()) {
            Ok(w) => w,
            Err(e) => {
                timings.parse_seconds = total_start.elapsed().as_secs_f64();
                timings.total_seconds = timings.parse_seconds;
                job_span.set_arg("outcome", "error");
                self.metrics.record("error", timings.total_seconds);
                return JobResult {
                    index,
                    name,
                    target,
                    key: String::new(),
                    cache: CacheOutcome::Bypass,
                    timings,
                    artifact: Err(e),
                };
            }
        };
        timings.parse_seconds = total_start.elapsed().as_secs_f64();

        let key = job.artifact_key(&workload);
        if self.config.use_cache {
            if let Some((artifact, outcome)) = self.cache.lookup(&key) {
                timings.total_seconds = total_start.elapsed().as_secs_f64();
                job_span.set_arg("outcome", outcome.name());
                self.metrics.record(outcome.name(), timings.total_seconds);
                return JobResult {
                    index,
                    name,
                    target,
                    key: key.to_hex(),
                    cache: outcome,
                    timings,
                    artifact: Ok(artifact),
                };
            }
        }

        let compile_start = Instant::now();
        let compiled = catch_unwind(AssertUnwindSafe(|| {
            compile_job(
                &job,
                &workload,
                self.config.use_cache.then(|| self.cache.core_handle()),
            )
        }));
        let artifact = match compiled {
            Ok(Ok((artifact, check_seconds))) => {
                timings.check_seconds = check_seconds;
                timings.compile_seconds = compile_start.elapsed().as_secs_f64() - check_seconds;
                let artifact = Arc::new(artifact);
                if self.config.use_cache {
                    self.cache.store(key, artifact.clone());
                }
                Ok(artifact)
            }
            Ok(Err(e)) => {
                timings.compile_seconds = compile_start.elapsed().as_secs_f64();
                Err(e)
            }
            Err(panic) => {
                timings.compile_seconds = compile_start.elapsed().as_secs_f64();
                Err(JobError {
                    kind: JobErrorKind::Compile,
                    message: format!("internal compiler error: {}", panic_message(&panic)),
                })
            }
        };
        timings.total_seconds = total_start.elapsed().as_secs_f64();
        let cache = if self.config.use_cache {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Bypass
        };
        let outcome = if artifact.is_err() {
            "error"
        } else {
            cache.name()
        };
        job_span.set_arg("outcome", outcome);
        self.metrics.record(outcome, timings.total_seconds);
        JobResult {
            index,
            name,
            target,
            key: key.to_hex(),
            cache,
            timings,
            artifact,
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Loads a job's workload: in-memory sources pass through, file/inline
/// text resolves its frontend through the global [`FrontendRegistry`]
/// (explicit `frontend` name first, then the path's extension, then
/// content sniffing) and parses under it.
fn load_workload(source: &JobSource, frontend: Option<&str>) -> Result<Workload, JobError> {
    let (name, path, text) = match source {
        JobSource::Formula { formula, .. } => return Ok(Workload::MaxSat(formula.clone())),
        JobSource::Workload { workload, .. } => return Ok(workload.clone()),
        JobSource::Inline { name, text } => (name.clone(), None, text.clone()),
        JobSource::Path(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| JobError {
                kind: JobErrorKind::Io,
                message: format!("cannot read {}: {e}", path.display()),
            })?;
            (path.display().to_string(), Some(path.as_path()), text)
        }
    };
    let front = FrontendRegistry::global()
        .resolve(frontend, path, &text)
        .map_err(|message| JobError {
            kind: JobErrorKind::UnknownFormat,
            message: format!("{name}: {message}"),
        })?;
    front.parse(&text).map_err(|e| JobError {
        kind: JobErrorKind::Parse,
        message: format!("{name}: {e}"),
    })
}

/// Compiles one job (already parsed); returns the artifact and the seconds
/// spent in the wChecker. Every target dispatches through the shared
/// [`BackendRegistry`], and the construction mirrors `weaverc`'s
/// single-shot path exactly, so batch output is byte-identical to
/// sequential runs.
fn compile_job(
    job: &CompileJob,
    workload: &Workload,
    core_cache: Option<&weaver_core::cache::CacheHandle>,
) -> Result<(Artifact, f64), JobError> {
    let options = CodegenOptions {
        compression: job.options.compression,
        parallel_shuttling: job.options.parallel_shuttling,
        dsatur: job.options.dsatur,
        qaoa: QaoaParams::single(job.options.gamma, job.options.beta),
        measure: true,
        ..CodegenOptions::default()
    };
    let weaver = Weaver::new()
        .with_fpqa_params(job.options.fpqa_params())
        .with_options(options);
    let output = weaver
        .compile_workload_cached(job.target.name(), workload, core_cache)
        .map_err(|e| JobError {
            kind: match e.kind {
                weaver_core::backend::BackendErrorKind::UnsupportedWorkload => {
                    JobErrorKind::UnsupportedWorkload
                }
                _ => JobErrorKind::Compile,
            },
            message: e.message,
        })?;
    let (check_passed, check_errors, check_seconds) = if job.options.check {
        let check_start = Instant::now();
        match weaver.verify_workload(&output, workload, core_cache) {
            Some(report) => {
                let seconds = check_start.elapsed().as_secs_f64();
                let errors = report.errors.iter().map(|e| e.to_string()).collect();
                (Some(report.passed()), errors, seconds)
            }
            // Targets without a checker (superconducting, simulator) record
            // no verdict rather than a vacuous pass.
            None => (None, Vec::new(), 0.0),
        }
    } else {
        (None, Vec::new(), 0.0)
    };
    Ok((
        Artifact {
            wqasm: output.artifact.print_wqasm(),
            swap_count: output.artifact.swap_count(),
            num_colors: output.artifact.num_colors(),
            metrics: output.metrics,
            passes: output.passes.iter().map(Into::into).collect(),
            check_passed,
            check_errors,
        },
        check_seconds,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Target;
    use weaver_sat::generator;

    fn engine(jobs: usize) -> Engine {
        Engine::new(EngineConfig {
            jobs,
            ..EngineConfig::default()
        })
    }

    fn batch(n: usize) -> Vec<CompileJob> {
        (1..=n)
            .map(|v| CompileJob::from_formula(format!("uf10-{v:02}"), generator::instance(10, v)))
            .collect()
    }

    #[test]
    fn cold_batch_compiles_everything() {
        let report = engine(2).run(batch(4));
        assert_eq!(report.succeeded(), 4);
        assert_eq!(report.cache_hits(), 0);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.cache, CacheOutcome::Miss);
            let artifact = r.artifact.as_ref().unwrap();
            assert!(artifact.wqasm.contains("OPENQASM"));
            assert!(artifact.metrics.pulses > 0);
        }
    }

    #[test]
    fn warm_batch_hits_without_recompiling() {
        let e = engine(2);
        let cold = e.run(batch(4));
        let warm = e.run(batch(4));
        assert_eq!(warm.cache_hits(), 4);
        for (c, w) in cold.results.iter().zip(&warm.results) {
            let (ca, wa) = (c.artifact.as_ref().unwrap(), w.artifact.as_ref().unwrap());
            assert_eq!(ca.wqasm, wa.wqasm);
            assert_eq!(ca.metrics, wa.metrics, "hit serves the stored metrics");
            assert_eq!(w.timings.compile_seconds, 0.0);
        }
    }

    #[test]
    fn parse_failures_are_structured_not_fatal() {
        let mut jobs = batch(2);
        jobs.push(CompileJob {
            source: JobSource::Inline {
                name: "broken".into(),
                text: "p cnf nonsense".into(),
            },
            ..jobs[0].clone()
        });
        jobs.push(CompileJob::from_path("/nonexistent/missing.cnf"));
        let report = engine(2).run(jobs);
        assert_eq!(report.succeeded(), 2);
        assert_eq!(report.failed(), 2);
        let parse_err = report.results[2].artifact.as_ref().unwrap_err();
        assert_eq!(parse_err.kind, JobErrorKind::Parse);
        let io_err = report.results[3].artifact.as_ref().unwrap_err();
        assert_eq!(io_err.kind, JobErrorKind::Io);
    }

    #[test]
    fn oversized_superconducting_job_fails_structurally() {
        let mut job = CompileJob::from_formula("uf150", generator::instance(150, 1));
        job.target = Target::Superconducting;
        let report = engine(1).run(vec![job]);
        let err = report.results[0].artifact.as_ref().unwrap_err();
        assert_eq!(err.kind, JobErrorKind::Compile);
        assert!(err.message.contains("exceed"));
    }

    #[test]
    fn oversized_simulator_job_fails_structurally() {
        let mut job = CompileJob::from_formula("uf50", generator::instance(50, 1));
        job.target = Target::Simulator;
        let report = engine(1).run(vec![job]);
        let err = report.results[0].artifact.as_ref().unwrap_err();
        assert_eq!(err.kind, JobErrorKind::Compile);
        assert!(err.message.contains("exceed the 20-qubit backend"), "{err}");
    }

    #[test]
    fn one_formula_compiles_for_every_registered_target() {
        let f = generator::instance(10, 1);
        let jobs: Vec<CompileJob> = Target::ALL
            .into_iter()
            .map(|target| {
                let mut job = CompileJob::from_formula(format!("uf10@{target}"), f.clone());
                job.target = target.clone();
                job
            })
            .collect();
        let report = engine(2).run(jobs);
        assert_eq!(report.succeeded(), 3);
        let by_target = |t: Target| {
            report
                .results
                .iter()
                .find(|r| r.target == t)
                .and_then(|r| r.artifact.as_ref().ok())
                .expect("artifact")
        };
        let fpqa = by_target(Target::Fpqa);
        assert!(fpqa.num_colors.is_some() && fpqa.swap_count.is_none());
        assert!(fpqa.wqasm.contains("@rydberg"));
        let sc = by_target(Target::Superconducting);
        assert!(sc.swap_count.is_some() && sc.num_colors.is_none());
        let sim = by_target(Target::Simulator);
        assert!(sim.metrics.eps > 0.0 && sim.metrics.eps <= 1.0);
        assert_eq!(sim.metrics.motion_ops, 0);
        assert!(!sim.wqasm.contains("@rydberg"), "ideal path has no pulses");
    }

    #[test]
    fn jsonl_stream_is_one_record_per_job_plus_summary() {
        let report = engine(1).run(batch(3));
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[..3].iter().all(|l| l.contains("\"kind\":\"job\"")));
        assert!(lines[3].contains("\"kind\":\"batch\""));
        assert!(lines[3].contains("\"jobs_per_sec\""));
    }

    #[test]
    fn unusable_disk_dir_degrades_and_reports_in_jsonl() {
        // A disk dir nested under a regular file can never be created.
        let file = std::env::temp_dir().join(format!("weaver-notadir-{}", std::process::id()));
        std::fs::write(&file, "x").unwrap();
        let e = Engine::new(EngineConfig {
            jobs: 1,
            cache: CacheConfig {
                disk_dir: Some(file.join("cache")),
                ..CacheConfig::default()
            },
            ..EngineConfig::default()
        });
        let report = e.run(batch(1));
        assert_eq!(report.succeeded(), 1, "memory-only fallback still works");
        let record = report.batch_record();
        assert!(record.contains("\"disk_disabled\":true"), "{record}");
        assert!(record.contains("\"disk_disabled_reason\":"), "{record}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn streaming_sink_sees_every_result() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let report = engine(2).run_streaming(batch(5), &|r| {
            seen.lock().unwrap().push(r.index);
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.results.len(), 5);
    }

    #[test]
    fn checked_jobs_record_the_verdict() {
        let mut jobs = batch(2);
        for j in &mut jobs {
            j.options.check = true;
        }
        let report = engine(2).run(jobs);
        assert_eq!(report.succeeded(), 2);
        for r in &report.results {
            assert_eq!(r.artifact.as_ref().unwrap().check_passed, Some(true));
        }
    }
}
