//! `weaverd` — the long-lived compile service.
//!
//! The batch engine compiles one suite per process; the server wraps the
//! same [`Engine`] in a daemon so the in-memory LRU, the paged disk
//! store's buffer pool, and the core memo caches stay hot across
//! requests. Clients speak a length-prefixed JSON protocol over a Unix
//! socket or TCP:
//!
//! ```text
//! frame   := u32 big-endian payload length | payload (UTF-8 JSON object)
//! request := {"verb":"compile","id":N,"name":...,"text":...,
//!             "frontend"?,"target"?,"emit"?,<job options>?}
//!          | {"verb":"ping"} | {"verb":"stats"} | {"verb":"shutdown"}
//! ```
//!
//! Every compile request is answered by exactly one `job` record (the
//! same JSON shape `weaverc batch` streams, plus the request `id` and —
//! with `"emit":true` — the compiled `wqasm` text), in completion order:
//! concurrent clients multiplex onto a bounded [`ServicePool`] and stream
//! results as they finish. When the queue is at its bound the server
//! sheds load with a structured `busy` record instead of stalling the
//! connection, and a drain (SIGTERM in `weaverd`, the `shutdown` verb, or
//! [`Server::shutdown_flag`]) finishes everything accepted before the
//! process exits.
//!
//! Per-connection panics are contained by a catch-unwind guard (logged
//! and counted as `weaver_server_panics_total`); per-job panics were
//! already contained by [`Engine`]. The `stats` verb exposes the cache
//! tiers, [`crate::store::StoreStats`] introspection, queue depth, and a
//! full Prometheus metrics snapshot.

use crate::engine::job_record_fields;
use crate::job::{CompileJob, JobSource, Target};
use crate::jsonl::{JsonObject, JsonValue};
use crate::pool::{ServicePool, SubmitError};
use crate::Engine;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use weaver_obs::{log, metrics, span, Counter, Gauge, Histogram};

/// Hard bound on one frame's payload. Large enough for any real artifact
/// stream, small enough that a hostile length prefix cannot OOM the
/// server.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Writes one length-prefixed frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds {MAX_FRAME_LEN}", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean close (EOF before any length
/// byte); a length over [`MAX_FRAME_LEN`] or a truncated payload is an
/// error.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Where the server listens (and clients connect).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenAddr {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP host:port.
    Tcp(String),
}

impl ListenAddr {
    /// Parses `unix:<path>` or `tcp:<host:port>`; an unprefixed value is a
    /// Unix socket path.
    pub fn parse(s: &str) -> Result<ListenAddr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_string());
            }
            return Ok(ListenAddr::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("`{addr}` is not host:port"));
            }
            return Ok(ListenAddr::Tcp(addr.to_string()));
        }
        if s.is_empty() {
            return Err("empty listen address".to_string());
        }
        Ok(ListenAddr::Unix(PathBuf::from(s)))
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ListenAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: ListenAddr,
    /// Engine configuration (workers, cache tiers).
    pub engine: crate::EngineConfig,
    /// Compile requests queued (not yet running) before the server sheds
    /// load with `busy` responses.
    pub queue_bound: usize,
    /// Enables the test-only `panic` verb that panics the connection
    /// handler, to exercise the catch-unwind guard.
    pub panic_verb: bool,
}

impl ServerConfig {
    /// A config with production defaults listening on `listen`.
    pub fn new(listen: ListenAddr) -> ServerConfig {
        ServerConfig {
            listen,
            engine: crate::EngineConfig::default(),
            queue_bound: 256,
            panic_verb: false,
        }
    }
}

/// One bidirectional client stream (the client half of the protocol —
/// used by `weaverc submit` and the soak tests).
#[derive(Debug)]
pub struct ClientStream(Stream);

impl ClientStream {
    /// Connects to a listening server.
    pub fn connect(addr: &ListenAddr) -> std::io::Result<ClientStream> {
        match addr {
            ListenAddr::Unix(path) => {
                UnixStream::connect(path).map(|s| ClientStream(Stream::Unix(s)))
            }
            ListenAddr::Tcp(a) => {
                TcpStream::connect(a.as_str()).map(|s| ClientStream(Stream::Tcp(s)))
            }
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn shutdown_read(&self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Read),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Read),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<(Stream, String)> {
        match self {
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok((Stream::Unix(stream), "unix".to_string()))
            }
            Listener::Tcp(l) => {
                let (stream, peer) = l.accept()?;
                Ok((Stream::Tcp(stream), peer.to_string()))
            }
        }
    }
}

/// Process-global server metric handles (`weaver_server_*`).
struct ServerMetrics {
    connections_total: Arc<Counter>,
    connections_active: Arc<Gauge>,
    /// Counters in verb order: compile, ping, stats, shutdown.
    requests_total: [Arc<Counter>; 4],
    busy_total: Arc<Counter>,
    malformed_total: Arc<Counter>,
    panics_total: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    request_seconds: Arc<Histogram>,
}

impl ServerMetrics {
    const VERBS: [&'static str; 4] = ["compile", "ping", "stats", "shutdown"];

    fn new() -> Self {
        ServerMetrics {
            connections_total: metrics::counter(
                "weaver_server_connections_total",
                "Client connections accepted.",
            ),
            connections_active: metrics::gauge(
                "weaver_server_connections_active",
                "Client connections currently open.",
            ),
            requests_total: ServerMetrics::VERBS.map(|verb| {
                metrics::counter_with(
                    "weaver_server_requests_total",
                    "Requests received, by verb.",
                    &[("verb", verb)],
                )
            }),
            busy_total: metrics::counter(
                "weaver_server_busy_total",
                "Compile requests shed with a `busy` response (queue at bound).",
            ),
            malformed_total: metrics::counter(
                "weaver_server_malformed_total",
                "Frames or requests rejected as malformed.",
            ),
            panics_total: metrics::counter(
                "weaver_server_panics_total",
                "Connection handlers that panicked (contained by the guard).",
            ),
            queue_depth: metrics::gauge(
                "weaver_server_queue_depth",
                "Compile requests queued but not yet running.",
            ),
            request_seconds: metrics::latency_histogram(
                "weaver_server_request_seconds",
                "Accept-to-response latency of compile requests.",
            ),
        }
    }

    fn count_verb(&self, verb: &str) {
        if let Some(idx) = ServerMetrics::VERBS.iter().position(|v| *v == verb) {
            self.requests_total[idx].inc();
        }
    }
}

/// One accepted compile request queued for the worker pool.
struct Queued {
    id: u64,
    index: usize,
    job: CompileJob,
    emit: bool,
    reply: mpsc::Sender<String>,
    accepted: Instant,
}

struct Shared {
    engine: Engine,
    draining: AtomicBool,
    shutdown: Arc<AtomicBool>,
    seq: AtomicU64,
    conns: Mutex<HashMap<u64, Stream>>,
    metrics: ServerMetrics,
    panic_verb: bool,
    queue_bound: usize,
}

/// Locks a mutex, recovering from a poisoned guard (the maps it protects
/// stay structurally valid across a handler panic).
fn lock_poison_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The compile daemon: owns the engine, the bounded worker pool, and the
/// listening socket. Built with [`Server::bind`]; [`Server::serve`] blocks
/// until a shutdown is requested and drains before returning.
pub struct Server {
    shared: Arc<Shared>,
    pool: Arc<ServicePool<Queued>>,
    listener: Listener,
    addr: ListenAddr,
    conn_seq: AtomicU64,
    conn_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds the listening socket and spins up the worker pool. A
    /// leftover Unix socket file at the path is removed first (a daemon
    /// killed without drain leaves one).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let engine = Engine::new(config.engine.clone());
        let workers = engine.workers();
        let shared = Arc::new(Shared {
            engine,
            draining: AtomicBool::new(false),
            shutdown: Arc::new(AtomicBool::new(false)),
            seq: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            metrics: ServerMetrics::new(),
            panic_verb: config.panic_verb,
            queue_bound: config.queue_bound.max(1),
        });
        let worker_shared = shared.clone();
        let pool = Arc::new(ServicePool::new(
            workers,
            shared.queue_bound,
            move |q: Queued| run_queued(&worker_shared, q),
        ));
        let (listener, addr) = match &config.listen {
            ListenAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l), ListenAddr::Unix(path.clone()))
            }
            ListenAddr::Tcp(a) => {
                let l = TcpListener::bind(a.as_str())?;
                l.set_nonblocking(true)?;
                // Report the actual address (`:0` binds an ephemeral port).
                let addr = l
                    .local_addr()
                    .map(|a| ListenAddr::Tcp(a.to_string()))
                    .unwrap_or_else(|_| config.listen.clone());
                (Listener::Tcp(l), addr)
            }
        };
        Ok(Server {
            shared,
            pool,
            listener,
            addr,
            conn_seq: AtomicU64::new(0),
            conn_handles: Mutex::new(Vec::new()),
        })
    }

    /// The bound address — for TCP with port `0`, the actual ephemeral
    /// port.
    pub fn local_addr(&self) -> ListenAddr {
        self.addr.clone()
    }

    /// The flag that stops [`Server::serve`]: store `true` (from a signal
    /// handler, another thread, or the `shutdown` verb does it itself) and
    /// the accept loop breaks into the drain sequence.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shared.shutdown.clone()
    }

    /// Accepts and serves connections until a shutdown is requested, then
    /// drains: queued compiles finish and their responses flush, idle
    /// connections are closed, the socket is released. Returns once the
    /// drain completes.
    pub fn serve(self) -> std::io::Result<()> {
        log::info("weaver-server", &format!("serving on {}", self.addr));
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let conn_id = self.conn_seq.fetch_add(1, Ordering::Relaxed);
                    let shared = self.shared.clone();
                    let pool = self.pool.clone();
                    // Register a second handle so drain can unblock the
                    // reader; refuse the connection if cloning fails.
                    match stream.try_clone() {
                        Ok(reader) => {
                            lock_poison_ok(&self.shared.conns).insert(conn_id, reader);
                        }
                        Err(_) => continue,
                    }
                    let spawned = std::thread::Builder::new()
                        .name(format!("weaver-conn-{conn_id}"))
                        .spawn(move || handle_connection(&shared, &pool, stream, conn_id, peer));
                    match spawned {
                        Ok(handle) => lock_poison_ok(&self.conn_handles).push(handle),
                        Err(e) => {
                            log::warn("weaver-server", &format!("spawn connection: {e}"));
                            lock_poison_ok(&self.shared.conns).remove(&conn_id);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    log::warn("weaver-server", &format!("accept: {e}"));
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }

        // Drain: refuse new compiles, finish everything queued (responses
        // stream out through the per-connection writers), then unblock the
        // readers so the connection threads exit.
        log::info("weaver-server", "draining");
        self.shared.draining.store(true, Ordering::SeqCst);
        self.pool.drain();
        for conn in lock_poison_ok(&self.shared.conns).values() {
            let _ = conn.shutdown_read();
        }
        let handles = std::mem::take(&mut *lock_poison_ok(&self.conn_handles));
        for handle in handles {
            let _ = handle.join();
        }
        if let ListenAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
        log::info("weaver-server", "drained cleanly");
        span::flush_thread();
        Ok(())
    }
}

/// Pool worker body: one compile request end to end.
fn run_queued(shared: &Shared, q: Queued) {
    let result = shared.engine.run_job(q.index, q.job);
    let mut record = job_record_fields(&result).u64("id", q.id);
    if q.emit {
        if let Ok(artifact) = &result.artifact {
            record = record.str("wqasm", &artifact.wqasm);
        }
    }
    shared
        .metrics
        .request_seconds
        .observe(q.accepted.elapsed().as_secs_f64());
    // A send failure means the client hung up; the result is simply
    // dropped (the artifact is already cached for the next asker).
    let _ = q.reply.send(record.finish());
}

fn handle_connection(
    shared: &Arc<Shared>,
    pool: &Arc<ServicePool<Queued>>,
    stream: Stream,
    conn_id: u64,
    peer: String,
) {
    shared.metrics.connections_total.inc();
    shared.metrics.connections_active.add(1.0);
    let mut conn_span = span::span("server-conn", format!("conn-{conn_id}"));
    conn_span.set_arg("peer", peer);

    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = stream.try_clone().ok().and_then(|mut write_half| {
        std::thread::Builder::new()
            .name(format!("weaver-conn-{conn_id}-w"))
            .spawn(move || {
                // Exits when every sender (reader + queued jobs) is gone
                // and the channel is drained — so queued results always
                // flush, even after the reader hangs up.
                while let Ok(record) = reply_rx.recv() {
                    if write_frame(&mut write_half, record.as_bytes()).is_err() {
                        break;
                    }
                }
            })
            .ok()
    });

    if writer.is_some() {
        let mut stream = stream;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_frames(shared, pool, &mut stream, &reply_tx)
        }));
        if let Err(panic) = outcome {
            shared.metrics.panics_total.inc();
            log::warn(
                "weaver-server",
                &format!(
                    "connection {conn_id} handler panicked (contained): {}",
                    panic_text(&panic)
                ),
            );
        }
    }

    drop(reply_tx);
    if let Some(writer) = writer {
        let _ = writer.join();
    }
    lock_poison_ok(&shared.conns).remove(&conn_id);
    shared.metrics.connections_active.add(-1.0);
    span::flush_thread();
}

fn panic_text(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Reads frames until the client closes, a framing error, or shutdown
/// unblocks the reader.
fn serve_frames(
    shared: &Shared,
    pool: &ServicePool<Queued>,
    stream: &mut Stream,
    reply: &mpsc::Sender<String>,
) {
    loop {
        let frame = match read_frame(stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e) => {
                // Oversized length prefix, torn frame, or reset: framing
                // is unrecoverable, so answer (best effort) and close.
                shared.metrics.malformed_total.inc();
                let _ = reply.send(error_record(None, "malformed", &e.to_string()));
                return;
            }
        };
        let request = match std::str::from_utf8(&frame)
            .map_err(|e| e.to_string())
            .and_then(JsonValue::parse)
        {
            Ok(v) => v,
            Err(e) => {
                // The frame boundary itself was sound, so the connection
                // can keep going after the error response.
                shared.metrics.malformed_total.inc();
                let _ = reply.send(error_record(None, "malformed", &format!("bad JSON: {e}")));
                continue;
            }
        };
        let id = request.get("id").and_then(JsonValue::as_u64);
        match request.str_field("verb") {
            Some("compile") => {
                shared.metrics.count_verb("compile");
                handle_compile(shared, pool, &request, reply);
            }
            Some("ping") => {
                shared.metrics.count_verb("ping");
                let mut pong = JsonObject::new().str("kind", "pong");
                if let Some(id) = id {
                    pong = pong.u64("id", id);
                }
                let _ = reply.send(pong.finish());
            }
            Some("stats") => {
                shared.metrics.count_verb("stats");
                let _ = reply.send(stats_record(shared, pool, id));
            }
            Some("shutdown") => {
                shared.metrics.count_verb("shutdown");
                shared.shutdown.store(true, Ordering::SeqCst);
                let mut ack = JsonObject::new().str("kind", "shutting-down");
                if let Some(id) = id {
                    ack = ack.u64("id", id);
                }
                let _ = reply.send(ack.finish());
            }
            Some("panic") if shared.panic_verb => {
                panic!("panic verb (test instrumentation)");
            }
            other => {
                shared.metrics.malformed_total.inc();
                let what = other.map_or("missing `verb`".to_string(), |v| {
                    format!("unknown verb `{v}`")
                });
                let _ = reply.send(error_record(id, "malformed", &what));
            }
        }
    }
}

fn handle_compile(
    shared: &Shared,
    pool: &ServicePool<Queued>,
    request: &JsonValue,
    reply: &mpsc::Sender<String>,
) {
    let Some(id) = request.get("id").and_then(JsonValue::as_u64) else {
        shared.metrics.malformed_total.inc();
        let _ = reply.send(error_record(
            None,
            "malformed",
            "compile requires a numeric `id`",
        ));
        return;
    };
    let Some(text) = request.str_field("text") else {
        shared.metrics.malformed_total.inc();
        let _ = reply.send(error_record(
            Some(id),
            "malformed",
            "compile requires `text`",
        ));
        return;
    };
    let target = match request.str_field("target") {
        None => Target::Fpqa,
        Some(t) => match Target::parse(t) {
            Ok(t) => t,
            Err(e) => {
                let _ = reply.send(error_record(Some(id), "unknown-target", &e));
                return;
            }
        },
    };
    let name = request
        .str_field("name")
        .map_or_else(|| format!("request-{id}"), str::to_string);
    let job = CompileJob {
        source: JobSource::Inline {
            name,
            text: text.to_string(),
        },
        frontend: request.str_field("frontend").map(str::to_string),
        target,
        options: job_options(request),
    };
    let emit = request
        .get("emit")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    if shared.draining.load(Ordering::SeqCst) {
        let _ = reply.send(error_record(
            Some(id),
            "shutting-down",
            "server is draining",
        ));
        return;
    }
    let queued = Queued {
        id,
        index: shared.seq.fetch_add(1, Ordering::Relaxed) as usize,
        job,
        emit,
        reply: reply.clone(),
        accepted: Instant::now(),
    };
    match pool.submit(queued) {
        Ok(()) => {
            shared.metrics.queue_depth.set(pool.queue_depth() as f64);
        }
        Err(SubmitError::Full(_)) => {
            shared.metrics.busy_total.inc();
            let record = JsonObject::new()
                .str("kind", "busy")
                .u64("id", id)
                .str("error_kind", "server-busy")
                .u64("queue_depth", pool.queue_depth() as u64)
                .u64("limit", shared.queue_bound as u64)
                .finish();
            let _ = reply.send(record);
        }
        Err(SubmitError::ShuttingDown(_)) => {
            let _ = reply.send(error_record(
                Some(id),
                "shutting-down",
                "server is draining",
            ));
        }
    }
}

/// Maps the manifest-style dashed option keys onto [`crate::JobOptions`].
fn job_options(request: &JsonValue) -> crate::JobOptions {
    let mut options = crate::JobOptions::default();
    let flag = |key: &str| request.get(key).and_then(JsonValue::as_bool);
    if let Some(v) = flag("check") {
        options.check = v;
    }
    if let Some(v) = flag("compression") {
        options.compression = v;
    }
    if let Some(v) = flag("parallel-shuttling") {
        options.parallel_shuttling = v;
    }
    if let Some(v) = flag("dsatur") {
        options.dsatur = v;
    }
    if let Some(v) = request.get("gamma").and_then(JsonValue::as_f64) {
        options.gamma = v;
    }
    if let Some(v) = request.get("beta").and_then(JsonValue::as_f64) {
        options.beta = v;
    }
    if let Some(v) = request.get("ccz-fidelity").and_then(JsonValue::as_f64) {
        options.ccz_fidelity = Some(v);
    }
    options
}

fn error_record(id: Option<u64>, kind: &str, message: &str) -> String {
    let mut record = JsonObject::new().str("kind", "error");
    if let Some(id) = id {
        record = record.u64("id", id);
    }
    record
        .str("error_kind", kind)
        .str("error", message)
        .finish()
}

/// The `stats` verb response: queue state, cache tiers, paged-store
/// introspection, and the full Prometheus snapshot.
fn stats_record(shared: &Shared, pool: &ServicePool<Queued>, id: Option<u64>) -> String {
    let tier = shared.engine.cache().stats();
    let cache = JsonObject::new()
        .u64("memory_hits", tier.memory_hits)
        .u64("disk_hits", tier.disk_hits)
        .u64("misses", tier.misses)
        .u64("evictions", tier.evictions)
        .u64("disk_write_errors", tier.disk_write_errors)
        .u64("migrated_legacy", tier.migrated_legacy)
        .finish();
    let store = match shared.engine.cache().store_stats() {
        Some(s) => JsonObject::new()
            .u64("page_size", u64::from(s.page_size))
            .u64("page_count", s.page_count)
            .u64("live_pages", s.live_pages)
            .u64("free_pages", s.free_pages)
            .u64("artifacts", s.artifacts)
            .u64("file_bytes", s.file_bytes)
            .u64("wal_bytes", s.wal_bytes)
            .u64("checksum_failures", s.checksum_failures)
            .u64("wal_replayed", s.wal_replayed)
            .u64("recoveries", s.recoveries)
            .u64("buffer_evictions", s.buffer_evictions)
            .u64("wal_fsyncs", s.wal_fsyncs)
            .u64("group_commits", s.group_commits)
            .finish(),
        None => "null".to_string(),
    };
    shared.metrics.queue_depth.set(pool.queue_depth() as f64);
    let mut record = JsonObject::new().str("kind", "stats");
    if let Some(id) = id {
        record = record.u64("id", id);
    }
    record
        .u64("queue_depth", pool.queue_depth() as u64)
        .u64("queue_bound", shared.queue_bound as u64)
        .u64("workers", shared.engine.workers() as u64)
        .bool("draining", shared.draining.load(Ordering::SeqCst))
        .raw("cache", &cache)
        .raw("store", &store)
        .str("metrics", &metrics::snapshot())
        .finish()
}
