//! The content-addressed artifact cache: an in-memory LRU tier backed by an
//! optional on-disk tier.
//!
//! Artifacts are addressed by the BLAKE2s-256 key of
//! [`crate::CompileJob::artifact_key`] — canonical formula ⊕ target
//! parameters ⊕ options ⊕ compiler version — so a hit is valid by
//! construction and no invalidation logic exists. The disk tier stores one
//! framed text file per artifact under `<dir>/<hex-key>.wvart`, written
//! atomically (temp file + rename) so concurrent writers cannot tear each
//! other's entries. Malformed or truncated disk entries degrade to misses.
//!
//! The cache also owns the process-wide [`CacheHandle`] threaded through
//! `weaver-core`, so all batch jobs share memoized clause plans and checker
//! device traces.

use crate::job::Artifact;
use crate::job::CacheOutcome;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use weaver_core::cache::{CacheHandle, Digest};
use weaver_core::Metrics;

/// Artifact-cache configuration.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum artifacts held by the in-memory LRU tier.
    pub memory_capacity: usize,
    /// Directory of the on-disk tier; `None` disables it.
    pub disk_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            memory_capacity: 1024,
            disk_dir: None,
        }
    }
}

/// Hit/miss counters of the two tiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTierStats {
    /// Lookups served by the in-memory tier.
    pub memory_hits: u64,
    /// Lookups served by the on-disk tier.
    pub disk_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts evicted from the memory tier.
    pub evictions: u64,
}

struct MemoryEntry {
    artifact: Arc<Artifact>,
    stamp: u64,
}

/// The content-addressed artifact cache (see module docs).
pub struct ArtifactCache {
    config: CacheConfig,
    memory: Mutex<HashMap<Digest, MemoryEntry>>,
    clock: AtomicU64,
    core: CacheHandle,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ArtifactCache {
    /// Builds a cache; the disk directory (when configured) is created
    /// eagerly so store failures surface here rather than mid-batch.
    pub fn new(config: CacheConfig) -> std::io::Result<Self> {
        if let Some(dir) = &config.disk_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ArtifactCache {
            config,
            memory: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            core: CacheHandle::new(),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The shared `weaver-core` memo handle (clause plans, checker traces).
    pub fn core_handle(&self) -> &CacheHandle {
        &self.core
    }

    /// Looks up an artifact: memory tier first, then disk (promoting the
    /// entry into memory on a disk hit).
    pub fn lookup(&self, key: &Digest) -> Option<(Arc<Artifact>, CacheOutcome)> {
        {
            let mut memory = self.memory.lock().unwrap();
            if let Some(entry) = memory.get_mut(key) {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return Some((entry.artifact.clone(), CacheOutcome::MemoryHit));
            }
        }
        if let Some(dir) = &self.config.disk_dir {
            let path = dir.join(format!("{}.wvart", key.to_hex()));
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Some(artifact) = parse_artifact(&text) {
                    let artifact = Arc::new(artifact);
                    self.insert_memory(*key, artifact.clone());
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Some((artifact, CacheOutcome::DiskHit));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores an artifact in both tiers. Disk-tier I/O failures are
    /// swallowed — the cache is an accelerator, not a system of record.
    pub fn store(&self, key: Digest, artifact: Arc<Artifact>) {
        if let Some(dir) = &self.config.disk_dir {
            let final_path = dir.join(format!("{}.wvart", key.to_hex()));
            // The clock tick keeps the temp name unique across concurrent
            // same-key writers within this process too, so the rename is
            // the only point an entry becomes visible.
            let tmp_path = dir.join(format!(
                "{}.tmp.{}.{}",
                key.to_hex(),
                std::process::id(),
                self.clock.fetch_add(1, Ordering::Relaxed)
            ));
            let text = render_artifact(&artifact);
            if std::fs::write(&tmp_path, text).is_ok() {
                let _ = std::fs::rename(&tmp_path, &final_path);
            }
        }
        self.insert_memory(key, artifact);
    }

    fn insert_memory(&self, key: Digest, artifact: Arc<Artifact>) {
        let mut memory = self.memory.lock().unwrap();
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        memory.insert(key, MemoryEntry { artifact, stamp });
        while memory.len() > self.config.memory_capacity.max(1) {
            let oldest = memory
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("nonempty map");
            memory.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time tier counters.
    pub fn stats(&self) -> CacheTierStats {
        CacheTierStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Disk-tier serialization (framed text, one artifact per file)
// ---------------------------------------------------------------------------

fn escape_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn opt_usize(v: Option<usize>) -> String {
    v.map_or("-".to_string(), |n| n.to_string())
}

fn opt_bool(v: Option<bool>) -> String {
    v.map_or("-".to_string(), |b| b.to_string())
}

/// Renders an artifact in the on-disk format (`weaver-artifact 2`; version
/// 2 added the per-pass timing trace — version-1 entries parse as misses
/// and recompile).
pub(crate) fn render_artifact(a: &Artifact) -> String {
    let mut out = String::new();
    out.push_str("weaver-artifact 2\n");
    let m = &a.metrics;
    // `{}` on f64 prints the shortest round-tripping decimal, so parsing
    // recovers the exact bits.
    let _ = writeln!(out, "compilation_seconds {}", m.compilation_seconds);
    let _ = writeln!(out, "execution_micros {}", m.execution_micros);
    let _ = writeln!(out, "eps {}", m.eps);
    let _ = writeln!(out, "pulses {}", m.pulses);
    let _ = writeln!(out, "motion_ops {}", m.motion_ops);
    let _ = writeln!(out, "steps {}", m.steps);
    let _ = writeln!(out, "swap_count {}", opt_usize(a.swap_count));
    let _ = writeln!(out, "num_colors {}", opt_usize(a.num_colors));
    let _ = writeln!(out, "check_passed {}", opt_bool(a.check_passed));
    let _ = writeln!(out, "passes {}", a.passes.len());
    for p in &a.passes {
        // Pass names are identifiers (no spaces), so `name seconds steps`
        // splits unambiguously from the right.
        let _ = writeln!(out, "{} {} {}", escape_line(&p.name), p.seconds, p.steps);
    }
    let _ = writeln!(out, "check_errors {}", a.check_errors.len());
    for e in &a.check_errors {
        let _ = writeln!(out, "{}", escape_line(e));
    }
    let _ = writeln!(out, "wqasm {}", a.wqasm.len());
    out.push_str(&a.wqasm);
    out
}

/// Parses the on-disk format; any malformation yields `None` (a cache miss).
pub(crate) fn parse_artifact(text: &str) -> Option<Artifact> {
    struct Cursor<'a> {
        rest: &'a str,
    }
    impl<'a> Cursor<'a> {
        fn line(&mut self) -> Option<&'a str> {
            let idx = self.rest.find('\n')?;
            let (line, tail) = self.rest.split_at(idx);
            self.rest = &tail[1..];
            Some(line)
        }
        fn field(&mut self, name: &str) -> Option<&'a str> {
            self.line()?.strip_prefix(name)?.strip_prefix(' ')
        }
        fn opt_usize(&mut self, name: &str) -> Option<Option<usize>> {
            match self.field(name)? {
                "-" => Some(None),
                v => v.parse().ok().map(Some),
            }
        }
    }

    let mut cur = Cursor { rest: text };
    if cur.line()? != "weaver-artifact 2" {
        return None;
    }
    let metrics = Metrics {
        compilation_seconds: cur.field("compilation_seconds")?.parse().ok()?,
        execution_micros: cur.field("execution_micros")?.parse().ok()?,
        eps: cur.field("eps")?.parse().ok()?,
        pulses: cur.field("pulses")?.parse().ok()?,
        motion_ops: cur.field("motion_ops")?.parse().ok()?,
        steps: cur.field("steps")?.parse().ok()?,
    };
    let swap_count = cur.opt_usize("swap_count")?;
    let num_colors = cur.opt_usize("num_colors")?;
    let check_passed = match cur.field("check_passed")? {
        "-" => None,
        "true" => Some(true),
        "false" => Some(false),
        _ => return None,
    };
    let pass_count: usize = cur.field("passes")?.parse().ok()?;
    let mut passes = Vec::with_capacity(pass_count.min(64));
    for _ in 0..pass_count {
        // `name seconds steps`, split from the right so escaped names keep
        // their content intact.
        let mut fields = cur.line()?.rsplitn(3, ' ');
        let steps: u64 = fields.next()?.parse().ok()?;
        let seconds: f64 = fields.next()?.parse().ok()?;
        let name = unescape_line(fields.next()?);
        passes.push(crate::job::PassTiming {
            name,
            seconds,
            steps,
        });
    }
    let error_count: usize = cur.field("check_errors")?.parse().ok()?;
    let mut check_errors = Vec::with_capacity(error_count.min(1024));
    for _ in 0..error_count {
        check_errors.push(unescape_line(cur.line()?));
    }
    let wqasm_len: usize = cur.field("wqasm")?.parse().ok()?;
    if cur.rest.len() != wqasm_len {
        return None;
    }
    Some(Artifact {
        wqasm: cur.rest.to_string(),
        metrics,
        passes,
        swap_count,
        num_colors,
        check_passed,
        check_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_core::cache::Fingerprint;

    fn sample_artifact(tag: usize) -> Artifact {
        Artifact {
            wqasm: format!("OPENQASM 3.0;\n// artifact {tag}\nqubit[3] q;\n"),
            metrics: Metrics {
                compilation_seconds: 0.125 + tag as f64,
                execution_micros: 1.0 / 3.0,
                eps: 1e-7,
                pulses: 10 + tag,
                motion_ops: 3,
                steps: 99,
            },
            passes: vec![
                crate::job::PassTiming {
                    name: "qaoa-lower".to_string(),
                    seconds: 0.25 + tag as f64,
                    steps: 0,
                },
                crate::job::PassTiming {
                    name: "sabre-transpile".to_string(),
                    seconds: 1.0 / 7.0,
                    steps: 42,
                },
            ],
            swap_count: None,
            num_colors: Some(2),
            check_passed: Some(true),
            check_errors: vec!["line one\nline two".to_string(), "back\\slash".to_string()],
        }
    }

    fn key(tag: u64) -> Digest {
        let mut fp = Fingerprint::new();
        fp.u64(tag);
        fp.digest()
    }

    #[test]
    fn disk_format_roundtrips_exactly() {
        let a = sample_artifact(7);
        let parsed = parse_artifact(&render_artifact(&a)).expect("parse");
        assert_eq!(parsed, a);
    }

    #[test]
    fn malformed_disk_entries_are_misses() {
        assert!(parse_artifact("").is_none());
        assert!(parse_artifact("weaver-artifact 2\n").is_none());
        // Version-1 entries (no pass trace) are stale and must miss.
        assert!(parse_artifact("weaver-artifact 1\n").is_none());
        let truncated = &render_artifact(&sample_artifact(1))[..40];
        assert!(parse_artifact(truncated).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ArtifactCache::new(CacheConfig {
            memory_capacity: 2,
            disk_dir: None,
        })
        .unwrap();
        cache.store(key(1), Arc::new(sample_artifact(1)));
        cache.store(key(2), Arc::new(sample_artifact(2)));
        assert!(cache.lookup(&key(1)).is_some()); // refresh 1
        cache.store(key(3), Arc::new(sample_artifact(3))); // evicts 2
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("weaver-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            memory_capacity: 8,
            disk_dir: Some(dir.clone()),
        };
        let first = ArtifactCache::new(config.clone()).unwrap();
        first.store(key(9), Arc::new(sample_artifact(9)));
        // A fresh cache (new process, cold memory) finds the disk entry.
        let second = ArtifactCache::new(config).unwrap();
        let (artifact, outcome) = second.lookup(&key(9)).expect("disk hit");
        assert_eq!(outcome, CacheOutcome::DiskHit);
        assert_eq!(*artifact, sample_artifact(9));
        // And it is promoted into memory.
        let (_, outcome) = second.lookup(&key(9)).expect("memory hit");
        assert_eq!(outcome, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
