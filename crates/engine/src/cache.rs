//! The content-addressed artifact cache: an in-memory LRU tier backed by an
//! optional on-disk tier.
//!
//! Artifacts are addressed by the BLAKE2s-256 key of
//! [`crate::CompileJob::artifact_key`] — canonical formula ⊕ target
//! parameters ⊕ options ⊕ compiler version — so a hit is valid by
//! construction and no invalidation logic exists.
//!
//! The default disk tier is the durable paged store ([`crate::store`]):
//! one WAL-guarded page file that survives being killed at any byte —
//! every committed artifact is recovered byte-identical on reopen, torn
//! writes are discarded, and damaged pages quarantine as misses. The
//! pre-existing one-file-per-artifact format
//! ([`DiskFormat::FilePerArtifact`], `<dir>/<hex-key>.wvart`, atomic
//! temp-file + rename) remains available, and a directory of legacy
//! `.wvart` entries is migrated into the paged store the first time it is
//! opened. If another live process holds the store lock the cache falls
//! back to the legacy format so concurrent batches still share a
//! directory. Disk I/O failures never fail a compile: they are counted
//! ([`CacheTierStats::disk_write_errors`]) and warned once per process.
//!
//! The cache also owns the process-wide [`CacheHandle`] threaded through
//! `weaver-core`, so all batch jobs share memoized clause plans and checker
//! device traces.

use crate::job::Artifact;
use crate::job::CacheOutcome;
use crate::store::{self, Store, StoreTuning};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use weaver_core::cache::{CacheHandle, Digest};
use weaver_core::Metrics;
use weaver_obs::{log, metrics, Counter};

/// On-disk layout of the disk tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DiskFormat {
    /// The durable single-file paged store with WAL (see [`crate::store`]).
    #[default]
    Paged,
    /// The legacy one-file-per-artifact format (`<hex-key>.wvart`).
    FilePerArtifact,
}

/// Artifact-cache configuration.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum artifacts held by the in-memory LRU tier.
    pub memory_capacity: usize,
    /// Directory of the on-disk tier; `None` disables it.
    pub disk_dir: Option<PathBuf>,
    /// Disk-tier layout (paged store by default).
    pub disk_format: DiskFormat,
    /// Paged-store tuning (page size, buffer pool, checkpoint threshold).
    pub store: StoreTuning,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            memory_capacity: 1024,
            disk_dir: None,
            disk_format: DiskFormat::default(),
            store: StoreTuning::default(),
        }
    }
}

/// Hit/miss/durability counters of the two tiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTierStats {
    /// Lookups served by the in-memory tier.
    pub memory_hits: u64,
    /// Lookups served by the on-disk tier.
    pub disk_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts evicted from the memory tier.
    pub evictions: u64,
    /// Disk-tier write failures (swallowed, counted, warned once).
    pub disk_write_errors: u64,
    /// Pages or chains quarantined for checksum failures (paged store).
    pub checksum_failures: u64,
    /// WAL records replayed when the store was opened.
    pub wal_replayed: u64,
    /// Store opens that had crash damage to repair.
    pub recoveries: u64,
    /// Paged-store buffer-pool LRU evictions.
    pub buffer_evictions: u64,
    /// Legacy `.wvart` entries migrated into the paged store at open.
    pub migrated_legacy: u64,
}

struct MemoryEntry {
    artifact: Arc<Artifact>,
    stamp: u64,
}

/// The configured disk tier, as actually opened.
enum DiskTier {
    /// Disk caching disabled.
    None,
    /// The durable paged store (single writer, mutex-serialized; boxed to
    /// keep the tier enum small when disk caching is off).
    Paged(Box<Mutex<Store>>),
    /// Legacy one-file-per-artifact directory.
    Files(PathBuf),
}

/// Process-global cache metric handles, resolved once per cache instance
/// so the hot lookup/store paths update plain atomics instead of taking
/// the registry lock. Per-instance [`CacheTierStats`] counters stay
/// alongside: the registry series aggregate across every cache in the
/// process, the struct reports this one instance.
struct CacheMetrics {
    memory_hits: Arc<Counter>,
    disk_hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    disk_write_errors: Arc<Counter>,
}

impl CacheMetrics {
    fn new() -> Self {
        const HITS_HELP: &str = "Artifact-cache lookups served, by tier.";
        CacheMetrics {
            memory_hits: metrics::counter_with(
                "weaver_cache_hits_total",
                HITS_HELP,
                &[("tier", "memory")],
            ),
            disk_hits: metrics::counter_with(
                "weaver_cache_hits_total",
                HITS_HELP,
                &[("tier", "disk")],
            ),
            misses: metrics::counter(
                "weaver_cache_misses_total",
                "Artifact-cache lookups that found nothing.",
            ),
            evictions: metrics::counter(
                "weaver_cache_evictions_total",
                "Artifacts evicted from the in-memory LRU tier.",
            ),
            disk_write_errors: metrics::counter(
                "weaver_cache_disk_write_errors_total",
                "Disk-tier write failures (swallowed; the cache is an accelerator).",
            ),
        }
    }
}

/// Locks a mutex, recovering the guard if a panicking holder poisoned it —
/// the protected state is counters/maps the cache can keep serving.
fn lock_poison_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parses a 64-hex-digit artifact key (legacy disk file stem).
fn digest_from_hex(s: &str) -> Option<Digest> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
    }
    Some(Digest(out))
}

/// The content-addressed artifact cache (see module docs).
pub struct ArtifactCache {
    config: CacheConfig,
    memory: Mutex<HashMap<Digest, MemoryEntry>>,
    disk: DiskTier,
    /// Rendered entries parked for the paged tier's group commit: writers
    /// park here first, and whoever holds the store lock next commits
    /// everything parked under one WAL fsync.
    pending: Mutex<Vec<(Digest, Vec<u8>)>>,
    /// Scopes warn-once keys to this cache's directory, so a process
    /// serving many stores warns once *per store*, not once overall.
    warn_scope: String,
    clock: AtomicU64,
    core: CacheHandle,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    disk_write_errors: AtomicU64,
    migrated_legacy: AtomicU64,
    metrics: CacheMetrics,
}

impl ArtifactCache {
    /// Builds a cache; the disk tier (when configured) is opened eagerly —
    /// including paged-store crash recovery and legacy-format migration —
    /// so store failures surface here rather than mid-batch.
    pub fn new(config: CacheConfig) -> std::io::Result<Self> {
        let warn_scope = config
            .disk_dir
            .as_ref()
            .map_or_else(|| "memory".to_string(), |d| d.display().to_string());
        let mut cache = ArtifactCache {
            memory: Mutex::new(HashMap::new()),
            disk: DiskTier::None,
            pending: Mutex::new(Vec::new()),
            warn_scope,
            clock: AtomicU64::new(0),
            core: CacheHandle::new(),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_write_errors: AtomicU64::new(0),
            migrated_legacy: AtomicU64::new(0),
            metrics: CacheMetrics::new(),
            config,
        };
        let Some(dir) = cache.config.disk_dir.clone() else {
            return Ok(cache);
        };
        std::fs::create_dir_all(&dir)?;
        cache.disk = match cache.config.disk_format {
            DiskFormat::FilePerArtifact => DiskTier::Files(dir),
            DiskFormat::Paged => match Store::open(&dir, cache.config.store.clone()) {
                Ok(mut s) => {
                    let migrated = migrate_legacy_files(&dir, &mut s);
                    cache.migrated_legacy.store(migrated, Ordering::Relaxed);
                    DiskTier::Paged(Box::new(Mutex::new(s)))
                }
                // Another live process owns the store: share the directory
                // through the multi-writer-safe legacy format instead.
                Err(e) if store::is_locked(&e) => {
                    // Keyed per directory: a daemon opening many stores
                    // must warn for each one that falls back, not just
                    // the first.
                    log::warn_once(
                        &format!("cache-store-lock-fallback:{}", dir.display()),
                        "weaver-engine",
                        &format!("paged store busy ({e}); using one-file-per-artifact tier"),
                    );
                    DiskTier::Files(dir)
                }
                Err(e) => return Err(e),
            },
        };
        Ok(cache)
    }

    /// The shared `weaver-core` memo handle (clause plans, checker traces).
    pub fn core_handle(&self) -> &CacheHandle {
        &self.core
    }

    /// Looks up an artifact: memory tier first, then disk (promoting the
    /// entry into memory on a disk hit).
    pub fn lookup(&self, key: &Digest) -> Option<(Arc<Artifact>, CacheOutcome)> {
        {
            let mut memory = lock_poison_ok(&self.memory);
            if let Some(entry) = memory.get_mut(key) {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                self.metrics.memory_hits.inc();
                return Some((entry.artifact.clone(), CacheOutcome::MemoryHit));
            }
        }
        if let Some(artifact) = self.disk_lookup(key) {
            let artifact = Arc::new(artifact);
            self.insert_memory(*key, artifact.clone());
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.disk_hits.inc();
            return Some((artifact, CacheOutcome::DiskHit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.misses.inc();
        None
    }

    fn disk_lookup(&self, key: &Digest) -> Option<Artifact> {
        let text = match &self.disk {
            DiskTier::None => return None,
            DiskTier::Paged(store) => {
                // Torn or damaged chains come back as `None` (quarantined
                // inside the store), never as corrupt bytes.
                let bytes = lock_poison_ok(store).get(key).ok().flatten()?;
                String::from_utf8(bytes).ok()?
            }
            DiskTier::Files(dir) => {
                std::fs::read_to_string(dir.join(format!("{}.wvart", key.to_hex()))).ok()?
            }
        };
        parse_artifact(&text)
    }

    /// Stores an artifact in both tiers. Disk-tier I/O failures never fail
    /// the compile — the cache is an accelerator, not a system of record —
    /// but they are counted in [`CacheTierStats::disk_write_errors`] and
    /// warned once per process.
    pub fn store(&self, key: Digest, artifact: Arc<Artifact>) {
        match &self.disk {
            DiskTier::None => {}
            DiskTier::Paged(store) => {
                // Write-combining group commit: park the rendered entry,
                // then commit *everything* parked once the store lock is
                // ours. While one writer fsyncs, concurrent writers pile
                // into `pending`; the next lock holder commits them all
                // under a single WAL fsync ([`Store::put_many`]).
                lock_poison_ok(&self.pending).push((key, render_artifact(&artifact).into_bytes()));
                let mut store = lock_poison_ok(store);
                let batch = std::mem::take(&mut *lock_poison_ok(&self.pending));
                if !batch.is_empty() {
                    if let Err(e) = store.put_many(&batch) {
                        self.count_write_error("paged store put", &e);
                    }
                }
            }
            DiskTier::Files(dir) => {
                if let Err(e) = self.store_file(dir, &key, &artifact) {
                    self.count_write_error("disk write", &e);
                }
            }
        }
        self.insert_memory(key, artifact);
    }

    /// Legacy tier write: temp file, fsync, atomic rename — the fsync makes
    /// the fallback path durable too, and the rename is the only point an
    /// entry becomes visible to concurrent readers.
    fn store_file(&self, dir: &Path, key: &Digest, artifact: &Artifact) -> std::io::Result<()> {
        let final_path = dir.join(format!("{}.wvart", key.to_hex()));
        // The clock tick keeps the temp name unique across concurrent
        // same-key writers within this process too.
        let tmp_path = dir.join(format!(
            "{}.tmp.{}.{}",
            key.to_hex(),
            std::process::id(),
            self.clock.fetch_add(1, Ordering::Relaxed)
        ));
        let text = render_artifact(artifact);
        let result = std::fs::write(&tmp_path, text)
            .and_then(|()| std::fs::File::open(&tmp_path)?.sync_all())
            .and_then(|()| std::fs::rename(&tmp_path, &final_path));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
        }
        result
    }

    fn count_write_error(&self, what: &str, e: &std::io::Error) {
        self.disk_write_errors.fetch_add(1, Ordering::Relaxed);
        self.metrics.disk_write_errors.inc();
        log::warn_once(
            &format!("cache-disk-write-error:{}", self.warn_scope),
            "weaver-engine",
            &format!("{what} failed ({e}); artifacts may not persist — continuing without"),
        );
    }

    fn insert_memory(&self, key: Digest, artifact: Arc<Artifact>) {
        let mut memory = lock_poison_ok(&self.memory);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        memory.insert(key, MemoryEntry { artifact, stamp });
        while memory.len() > self.config.memory_capacity.max(1) {
            // `len > max(1) ≥ 1` makes the map nonempty, but stay defensive
            // rather than panic on a request path.
            let Some(oldest) = memory.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) else {
                break;
            };
            memory.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.metrics.evictions.inc();
        }
    }

    /// Runs a full checksum scan of the paged disk tier; `None` when the
    /// disk tier is absent or legacy-format.
    pub fn verify_disk(&self) -> Option<store::VerifyReport> {
        match &self.disk {
            DiskTier::Paged(store) => lock_poison_ok(store).verify().ok(),
            _ => None,
        }
    }

    /// Checkpoints the paged disk tier (fsync pages, truncate WAL); no-op
    /// for other tiers.
    pub fn checkpoint_disk(&self) {
        if let DiskTier::Paged(store) = &self.disk {
            let _ = lock_poison_ok(store).checkpoint();
        }
    }

    /// Point-in-time paged-store statistics for introspection surfaces
    /// (`weaverc cache stats`, the daemon admin verb); `None` when the
    /// disk tier is absent or legacy-format.
    pub fn store_stats(&self) -> Option<store::StoreStats> {
        match &self.disk {
            DiskTier::Paged(store) => Some(lock_poison_ok(store).stats()),
            _ => None,
        }
    }

    /// Point-in-time tier counters.
    pub fn stats(&self) -> CacheTierStats {
        let mut stats = CacheTierStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_write_errors: self.disk_write_errors.load(Ordering::Relaxed),
            migrated_legacy: self.migrated_legacy.load(Ordering::Relaxed),
            ..CacheTierStats::default()
        };
        if let DiskTier::Paged(store) = &self.disk {
            let s = lock_poison_ok(store).stats();
            stats.checksum_failures = s.checksum_failures;
            stats.wal_replayed = s.wal_replayed;
            stats.recoveries = s.recoveries;
            stats.buffer_evictions = s.buffer_evictions;
        }
        stats
    }
}

impl Drop for ArtifactCache {
    /// Best-effort checkpoint so a clean shutdown truncates the WAL and the
    /// next open replays nothing. A crash skips this — that's what the WAL
    /// is for.
    fn drop(&mut self) {
        // `store` drains `pending` under the store lock on every call, so
        // it is normally empty here — but flush defensively in case a
        // parked batch was orphaned by a panicking writer.
        if let DiskTier::Paged(store) = &self.disk {
            let mut store = lock_poison_ok(store);
            let batch = std::mem::take(&mut *lock_poison_ok(&self.pending));
            if !batch.is_empty() {
                let _ = store.put_many(&batch);
            }
        }
        self.checkpoint_disk();
    }
}

/// Imports every readable legacy `.wvart` entry into the paged store and
/// removes the file; malformed entries are left in place (they were misses
/// before and stay misses). Returns how many artifacts moved.
fn migrate_legacy_files(dir: &Path, store: &mut Store) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut migrated = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("wvart") {
            continue;
        }
        let Some(key) = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(digest_from_hex)
        else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if parse_artifact(&text).is_none() {
            continue;
        }
        if store.put(&key, text.as_bytes()).is_ok() {
            let _ = std::fs::remove_file(&path);
            migrated += 1;
        }
    }
    migrated
}

// ---------------------------------------------------------------------------
// Disk-tier serialization (framed text, one artifact per file)
// ---------------------------------------------------------------------------

fn escape_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn opt_usize(v: Option<usize>) -> String {
    v.map_or("-".to_string(), |n| n.to_string())
}

fn opt_bool(v: Option<bool>) -> String {
    v.map_or("-".to_string(), |b| b.to_string())
}

/// Renders an artifact in the on-disk format (`weaver-artifact 2`; version
/// 2 added the per-pass timing trace — version-1 entries parse as misses
/// and recompile).
pub(crate) fn render_artifact(a: &Artifact) -> String {
    let mut out = String::new();
    out.push_str("weaver-artifact 2\n");
    let m = &a.metrics;
    // `{}` on f64 prints the shortest round-tripping decimal, so parsing
    // recovers the exact bits.
    let _ = writeln!(out, "compilation_seconds {}", m.compilation_seconds);
    let _ = writeln!(out, "execution_micros {}", m.execution_micros);
    let _ = writeln!(out, "eps {}", m.eps);
    let _ = writeln!(out, "pulses {}", m.pulses);
    let _ = writeln!(out, "motion_ops {}", m.motion_ops);
    let _ = writeln!(out, "steps {}", m.steps);
    let _ = writeln!(out, "swap_count {}", opt_usize(a.swap_count));
    let _ = writeln!(out, "num_colors {}", opt_usize(a.num_colors));
    let _ = writeln!(out, "check_passed {}", opt_bool(a.check_passed));
    let _ = writeln!(out, "passes {}", a.passes.len());
    for p in &a.passes {
        // Pass names are identifiers (no spaces), so `name seconds steps`
        // splits unambiguously from the right.
        let _ = writeln!(out, "{} {} {}", escape_line(&p.name), p.seconds, p.steps);
    }
    let _ = writeln!(out, "check_errors {}", a.check_errors.len());
    for e in &a.check_errors {
        let _ = writeln!(out, "{}", escape_line(e));
    }
    let _ = writeln!(out, "wqasm {}", a.wqasm.len());
    out.push_str(&a.wqasm);
    out
}

/// Parses the on-disk format; any malformation yields `None` (a cache miss).
pub(crate) fn parse_artifact(text: &str) -> Option<Artifact> {
    struct Cursor<'a> {
        rest: &'a str,
    }
    impl<'a> Cursor<'a> {
        fn line(&mut self) -> Option<&'a str> {
            let idx = self.rest.find('\n')?;
            let (line, tail) = self.rest.split_at(idx);
            self.rest = &tail[1..];
            Some(line)
        }
        fn field(&mut self, name: &str) -> Option<&'a str> {
            self.line()?.strip_prefix(name)?.strip_prefix(' ')
        }
        fn opt_usize(&mut self, name: &str) -> Option<Option<usize>> {
            match self.field(name)? {
                "-" => Some(None),
                v => v.parse().ok().map(Some),
            }
        }
    }

    let mut cur = Cursor { rest: text };
    if cur.line()? != "weaver-artifact 2" {
        return None;
    }
    let metrics = Metrics {
        compilation_seconds: cur.field("compilation_seconds")?.parse().ok()?,
        execution_micros: cur.field("execution_micros")?.parse().ok()?,
        eps: cur.field("eps")?.parse().ok()?,
        pulses: cur.field("pulses")?.parse().ok()?,
        motion_ops: cur.field("motion_ops")?.parse().ok()?,
        steps: cur.field("steps")?.parse().ok()?,
    };
    let swap_count = cur.opt_usize("swap_count")?;
    let num_colors = cur.opt_usize("num_colors")?;
    let check_passed = match cur.field("check_passed")? {
        "-" => None,
        "true" => Some(true),
        "false" => Some(false),
        _ => return None,
    };
    let pass_count: usize = cur.field("passes")?.parse().ok()?;
    let mut passes = Vec::with_capacity(pass_count.min(64));
    for _ in 0..pass_count {
        // `name seconds steps`, split from the right so escaped names keep
        // their content intact.
        let mut fields = cur.line()?.rsplitn(3, ' ');
        let steps: u64 = fields.next()?.parse().ok()?;
        let seconds: f64 = fields.next()?.parse().ok()?;
        let name = unescape_line(fields.next()?);
        passes.push(crate::job::PassTiming {
            name,
            seconds,
            steps,
        });
    }
    let error_count: usize = cur.field("check_errors")?.parse().ok()?;
    let mut check_errors = Vec::with_capacity(error_count.min(1024));
    for _ in 0..error_count {
        check_errors.push(unescape_line(cur.line()?));
    }
    let wqasm_len: usize = cur.field("wqasm")?.parse().ok()?;
    if cur.rest.len() != wqasm_len {
        return None;
    }
    Some(Artifact {
        wqasm: cur.rest.to_string(),
        metrics,
        passes,
        swap_count,
        num_colors,
        check_passed,
        check_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_core::cache::Fingerprint;

    fn sample_artifact(tag: usize) -> Artifact {
        Artifact {
            wqasm: format!("OPENQASM 3.0;\n// artifact {tag}\nqubit[3] q;\n"),
            metrics: Metrics {
                compilation_seconds: 0.125 + tag as f64,
                execution_micros: 1.0 / 3.0,
                eps: 1e-7,
                pulses: 10 + tag,
                motion_ops: 3,
                steps: 99,
            },
            passes: vec![
                crate::job::PassTiming {
                    name: "qaoa-lower".to_string(),
                    seconds: 0.25 + tag as f64,
                    steps: 0,
                },
                crate::job::PassTiming {
                    name: "sabre-transpile".to_string(),
                    seconds: 1.0 / 7.0,
                    steps: 42,
                },
            ],
            swap_count: None,
            num_colors: Some(2),
            check_passed: Some(true),
            check_errors: vec!["line one\nline two".to_string(), "back\\slash".to_string()],
        }
    }

    fn key(tag: u64) -> Digest {
        let mut fp = Fingerprint::new();
        fp.u64(tag);
        fp.digest()
    }

    #[test]
    fn disk_format_roundtrips_exactly() {
        let a = sample_artifact(7);
        let parsed = parse_artifact(&render_artifact(&a)).expect("parse");
        assert_eq!(parsed, a);
    }

    #[test]
    fn malformed_disk_entries_are_misses() {
        assert!(parse_artifact("").is_none());
        assert!(parse_artifact("weaver-artifact 2\n").is_none());
        // Version-1 entries (no pass trace) are stale and must miss.
        assert!(parse_artifact("weaver-artifact 1\n").is_none());
        let truncated = &render_artifact(&sample_artifact(1))[..40];
        assert!(parse_artifact(truncated).is_none());
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("weaver-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ArtifactCache::new(CacheConfig {
            memory_capacity: 2,
            ..CacheConfig::default()
        })
        .unwrap();
        cache.store(key(1), Arc::new(sample_artifact(1)));
        cache.store(key(2), Arc::new(sample_artifact(2)));
        assert!(cache.lookup(&key(1)).is_some()); // refresh 1
        cache.store(key(3), Arc::new(sample_artifact(3))); // evicts 2
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        for format in [DiskFormat::Paged, DiskFormat::FilePerArtifact] {
            let dir = test_dir(&format!("fresh-{format:?}"));
            let config = CacheConfig {
                memory_capacity: 8,
                disk_dir: Some(dir.clone()),
                disk_format: format,
                ..CacheConfig::default()
            };
            let first = ArtifactCache::new(config.clone()).unwrap();
            first.store(key(9), Arc::new(sample_artifact(9)));
            // The paged store is single-writer: release it before the
            // "fresh process" below opens the same directory.
            drop(first);
            // A fresh cache (new process, cold memory) finds the disk entry.
            let second = ArtifactCache::new(config).unwrap();
            let (artifact, outcome) = second.lookup(&key(9)).expect("disk hit");
            assert_eq!(outcome, CacheOutcome::DiskHit);
            assert_eq!(*artifact, sample_artifact(9));
            // And it is promoted into memory.
            let (_, outcome) = second.lookup(&key(9)).expect("memory hit");
            assert_eq!(outcome, CacheOutcome::MemoryHit);
            drop(second);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn legacy_entries_migrate_into_the_paged_store() {
        let dir = test_dir("migrate");
        // Seed the directory with the legacy one-file-per-artifact layout.
        let legacy = ArtifactCache::new(CacheConfig {
            memory_capacity: 8,
            disk_dir: Some(dir.clone()),
            disk_format: DiskFormat::FilePerArtifact,
            ..CacheConfig::default()
        })
        .unwrap();
        legacy.store(key(1), Arc::new(sample_artifact(1)));
        legacy.store(key(2), Arc::new(sample_artifact(2)));
        drop(legacy);
        std::fs::write(dir.join("not-a-digest.wvart"), "garbage").unwrap();

        let paged = ArtifactCache::new(CacheConfig {
            memory_capacity: 8,
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        assert_eq!(paged.stats().migrated_legacy, 2);
        for tag in [1, 2] {
            let (artifact, outcome) = paged.lookup(&key(tag)).expect("migrated hit");
            assert_eq!(outcome, CacheOutcome::DiskHit);
            assert_eq!(*artifact, sample_artifact(tag as usize));
        }
        // Migrated files were removed; the undecodable one stays put.
        let wvart: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "wvart"))
            .collect();
        assert_eq!(wvart.len(), 1);
        assert!(paged.verify_disk().expect("paged tier").consistent());
        drop(paged);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_group_commit_consistently() {
        let dir = test_dir("groupcommit");
        let config = CacheConfig {
            memory_capacity: 64,
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let cache = ArtifactCache::new(config.clone()).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..8u64 {
                        let tag = 1000 + t * 100 + i;
                        cache.store(key(tag), Arc::new(sample_artifact(tag as usize)));
                    }
                });
            }
        });
        let stats = cache.store_stats().expect("paged tier");
        assert_eq!(stats.artifacts, 32);
        // Every store() call commits (possibly batched with others), so the
        // fsync count never exceeds the write count; batching is timing-
        // dependent, so equality is allowed but not required.
        assert!(stats.wal_fsyncs <= 32, "stats: {stats:?}");
        drop(cache);
        // All 32 artifacts are durable and byte-identical after reopen.
        let reopened = ArtifactCache::new(config).unwrap();
        for t in 0..4u64 {
            for i in 0..8u64 {
                let tag = 1000 + t * 100 + i;
                let (artifact, outcome) = reopened.lookup(&key(tag)).expect("disk hit");
                assert_eq!(outcome, CacheOutcome::DiskHit);
                assert_eq!(*artifact, sample_artifact(tag as usize));
            }
        }
        assert!(reopened.verify_disk().expect("paged tier").consistent());
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn locked_store_falls_back_to_legacy_files() {
        let dir = test_dir("lockfall");
        let config = CacheConfig {
            memory_capacity: 8,
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let owner = ArtifactCache::new(config.clone()).unwrap();
        owner.store(key(5), Arc::new(sample_artifact(5)));
        // Second opener can't take the store lock → legacy tier, still works.
        let tenant = ArtifactCache::new(config).unwrap();
        assert!(matches!(tenant.disk, DiskTier::Files(_)));
        tenant.store(key(6), Arc::new(sample_artifact(6)));
        drop(tenant);
        drop(owner);
        // Reopening single-writer migrates the tenant's legacy entry in.
        let merged = ArtifactCache::new(CacheConfig {
            memory_capacity: 8,
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        assert_eq!(merged.stats().migrated_legacy, 1);
        assert!(merged.lookup(&key(5)).is_some());
        assert!(merged.lookup(&key(6)).is_some());
        drop(merged);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
