//! A work-stealing thread-pool driver for batch jobs.
//!
//! Jobs are seeded round-robin into per-worker deques; an idle worker pops
//! from the front of its own deque and, when empty, steals from the back of
//! the fullest other deque. Because no job spawns further jobs, "every
//! deque empty" is a stable termination condition. Results land in a slot
//! array indexed by submission order, so the output is deterministic and
//! independent of scheduling, thread count, and completion order.
//!
//! [`run_jobs`] is the one-shot batch driver; [`ServicePool`] is its
//! long-lived sibling for the daemon: the same per-worker deques and
//! stealing discipline, but workers persist across submissions, the queue
//! is bounded (backpressure instead of unbounded growth), and
//! [`ServicePool::drain`] finishes queued work before the threads exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Locks a mutex, recovering the guard if a panicking holder poisoned it —
/// pool queues stay structurally valid across a payload panic.
fn lock_poison_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs every item of `items` through `run` on `workers` threads and
/// returns the results in submission order. `workers` is clamped to
/// `1..=items.len()`; with one worker the pool degenerates to a sequential
/// loop (no threads are spawned).
pub fn run_jobs<T, R, F>(items: Vec<T>, workers: usize, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run(i, item))
            .collect();
    }

    // Round-robin seeding keeps the initial load balanced; stealing fixes
    // whatever imbalance job runtimes introduce.
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        lock_poison_ok(&queues[i % workers]).push_back((i, item));
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let run = &run;
            // Named threads give trace spans (and debuggers) a stable
            // worker identity: spans recorded on this thread report
            // `weaver-worker-<n>` as their thread name.
            std::thread::Builder::new()
                .name(format!("weaver-worker-{me}"))
                .spawn_scoped(scope, move || loop {
                    // Own deque first (front), then steal (back of the
                    // fullest).
                    let next = lock_poison_ok(&queues[me]).pop_front();
                    let (index, item) = match next.or_else(|| steal(queues, me)) {
                        Some(job) => job,
                        None => {
                            // Must happen inside the closure: the scope
                            // unblocks before this thread's TLS destructors
                            // run, so a drop-time flush could lose the last
                            // buffered spans to a caller draining the trace
                            // right after the batch returns.
                            weaver_obs::span::flush_thread();
                            return;
                        }
                    };
                    let result = run(index, item);
                    *lock_poison_ok(&results[index]) = Some(result);
                })
                .expect("spawn batch worker");
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every job ran exactly once")
        })
        .collect()
}

/// Steals one job from the back of the fullest deque other than `me`.
fn steal<T>(queues: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    let mut victim: Option<usize> = None;
    let mut longest = 0usize;
    for (w, queue) in queues.iter().enumerate() {
        if w == me {
            continue;
        }
        let len = lock_poison_ok(queue).len();
        if len > longest {
            longest = len;
            victim = Some(w);
        }
    }
    lock_poison_ok(&queues[victim?]).pop_back()
}

// ---------------------------------------------------------------------------
// The persistent service pool
// ---------------------------------------------------------------------------

/// Why [`ServicePool::submit`] rejected an item; the item is handed back so
/// the caller can report structured backpressure instead of losing it.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The queue is at its bound — the caller should shed load.
    Full(T),
    /// The pool is draining and accepts no further work.
    ShuttingDown(T),
}

struct ServiceInner<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Items pushed but not yet popped by a worker (the bounded quantity).
    queued: AtomicUsize,
    bound: usize,
    rr: AtomicUsize,
    stop: AtomicBool,
    /// Wakes idle workers on submit and drain. The gate mutex carries no
    /// data: `queued`/`stop` are re-checked under it so a notify between
    /// check and wait cannot be missed.
    gate: Mutex<()>,
    available: Condvar,
}

/// A long-lived work-stealing pool: `workers` persistent threads service a
/// bounded multi-queue of submitted items. Same stealing discipline as
/// [`run_jobs`]; unlike it, the pool outlives any one batch, so the daemon
/// keeps its caches hot across requests.
///
/// Results travel through whatever channel the `run` closure captures (the
/// server hands each item a reply sender) — the pool itself only schedules.
pub struct ServicePool<T> {
    inner: Arc<ServiceInner<T>>,
    run: Arc<dyn Fn(T) + Send + Sync>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<T: Send + 'static> ServicePool<T> {
    /// Spawns `workers` threads (min 1) servicing a queue bounded at
    /// `bound` items (min 1). `run` is invoked once per submitted item, on
    /// some worker thread.
    pub fn new<F>(workers: usize, bound: usize, run: F) -> ServicePool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let inner = Arc::new(ServiceInner {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            bound: bound.max(1),
            rr: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            gate: Mutex::new(()),
            available: Condvar::new(),
        });
        let run: Arc<dyn Fn(T) + Send + Sync> = Arc::new(run);
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let inner = inner.clone();
            let run = run.clone();
            let handle = std::thread::Builder::new()
                .name(format!("weaver-service-{me}"))
                .spawn(move || service_worker(me, &inner, &*run))
                .expect("spawn service worker");
            handles.push(handle);
        }
        ServicePool {
            inner,
            run,
            handles: Mutex::new(handles),
        }
    }

    /// Enqueues `item`, or returns it inside a [`SubmitError`] when the
    /// pool is at its bound or draining.
    pub fn submit(&self, item: T) -> Result<(), SubmitError<T>> {
        if self.inner.stop.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown(item));
        }
        // Reserve a queue slot before pushing so concurrent submitters
        // cannot overshoot the bound.
        let mut depth = self.inner.queued.load(Ordering::SeqCst);
        loop {
            if depth >= self.inner.bound {
                return Err(SubmitError::Full(item));
            }
            match self.inner.queued.compare_exchange(
                depth,
                depth + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(current) => depth = current,
            }
        }
        let w = self.inner.rr.fetch_add(1, Ordering::Relaxed) % self.inner.queues.len();
        lock_poison_ok(&self.inner.queues[w]).push_back(item);
        let _gate = lock_poison_ok(&self.inner.gate);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Items queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.queued.load(Ordering::SeqCst)
    }

    /// Whether [`ServicePool::drain`] has started.
    pub fn is_draining(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting new work, finishes everything already queued, and
    /// joins the worker threads. Idempotent.
    pub fn drain(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        {
            let _gate = lock_poison_ok(&self.inner.gate);
            self.inner.available.notify_all();
        }
        let handles = std::mem::take(&mut *lock_poison_ok(&self.handles));
        for handle in handles {
            let _ = handle.join();
        }
        // A submit racing the shutdown can slip an item in after the
        // workers observed empty queues and exited; run it inline so every
        // accepted item is serviced.
        while let Some(item) = pop_any(&self.inner.queues) {
            self.inner.queued.fetch_sub(1, Ordering::SeqCst);
            (self.run)(item);
        }
    }
}

impl<T> Drop for ServicePool<T> {
    fn drop(&mut self) {
        // Workers hold `Arc<ServiceInner>`, so without a drain they would
        // outlive the handle and idle forever.
        self.inner.stop.store(true, Ordering::SeqCst);
        {
            let _gate = lock_poison_ok(&self.inner.gate);
            self.inner.available.notify_all();
        }
        let handles = std::mem::take(&mut *lock_poison_ok(&self.handles));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn service_worker<T>(me: usize, inner: &ServiceInner<T>, run: &(dyn Fn(T) + Send + Sync)) {
    loop {
        let next = lock_poison_ok(&inner.queues[me])
            .pop_front()
            .or_else(|| steal_service(&inner.queues, me));
        match next {
            Some(item) => {
                inner.queued.fetch_sub(1, Ordering::SeqCst);
                run(item);
            }
            None => {
                if inner.stop.load(Ordering::SeqCst) {
                    // Flush buffered trace spans before the thread exits
                    // (same reasoning as the batch workers above).
                    weaver_obs::span::flush_thread();
                    return;
                }
                let gate = lock_poison_ok(&inner.gate);
                if inner.queued.load(Ordering::SeqCst) == 0 && !inner.stop.load(Ordering::SeqCst) {
                    // Timeout is a backstop against a lost wakeup, not the
                    // scheduling mechanism.
                    let _ = inner
                        .available
                        .wait_timeout(gate, Duration::from_millis(100));
                }
            }
        }
    }
}

/// Steals one item from the back of the fullest deque other than `me`.
fn steal_service<T>(queues: &[Mutex<VecDeque<T>>], me: usize) -> Option<T> {
    let mut victim: Option<usize> = None;
    let mut longest = 0usize;
    for (w, queue) in queues.iter().enumerate() {
        if w == me {
            continue;
        }
        let len = lock_poison_ok(queue).len();
        if len > longest {
            longest = len;
            victim = Some(w);
        }
    }
    lock_poison_ok(&queues[victim?]).pop_back()
}

/// Pops one item from any non-empty deque.
fn pop_any<T>(queues: &[Mutex<VecDeque<T>>]) -> Option<T> {
    queues.iter().find_map(|q| lock_poison_ok(q).pop_front())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_submission_order() {
        for workers in [1, 2, 4, 7] {
            let items: Vec<usize> = (0..50).collect();
            let out = run_jobs(items, workers, |i, item| {
                assert_eq!(i, item);
                item * 2
            });
            assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_jobs((0..64).collect::<Vec<usize>>(), 4, |_, item| {
            counters[item].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_jobs(vec![1, 2], 16, |_, item| item + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let out = run_jobs(Vec::<u32>::new(), 4, |_, item| item);
        assert!(out.is_empty());
    }

    #[test]
    fn service_pool_runs_everything_submitted() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let pool = {
            let seen = seen.clone();
            ServicePool::new(3, 64, move |item: usize| {
                lock_poison_ok(&seen).push(item);
            })
        };
        for i in 0..40 {
            pool.submit(i).unwrap();
        }
        pool.drain();
        let mut got = lock_poison_ok(&seen).clone();
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        assert_eq!(pool.queue_depth(), 0);
        assert!(pool.is_draining());
    }

    #[test]
    fn service_pool_bounds_the_queue_and_hands_items_back() {
        let release = Arc::new(AtomicUsize::new(0));
        let pool = {
            let release = release.clone();
            ServicePool::new(1, 2, move |_item: usize| {
                while release.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            })
        };
        // One item occupies the worker; fill the queue behind it, then the
        // next submit must bounce with the item intact.
        pool.submit(0).unwrap();
        let mut bounced = None;
        for i in 1..20 {
            if let Err(SubmitError::Full(item)) = pool.submit(i) {
                bounced = Some(item);
                break;
            }
        }
        let bounced = bounced.expect("a tiny bound must bounce a flood");
        assert!(pool.queue_depth() <= 2);
        release.store(1, Ordering::SeqCst);
        pool.drain();
        assert!(matches!(
            pool.submit(bounced),
            Err(SubmitError::ShuttingDown(_))
        ));
    }

    #[test]
    fn service_pool_drain_finishes_queued_work() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = done.clone();
            ServicePool::new(2, 128, move |_item: usize| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        let mut accepted = 0;
        for i in 0..64 {
            if pool.submit(i).is_ok() {
                accepted += 1;
            }
        }
        pool.drain();
        assert_eq!(done.load(Ordering::SeqCst), accepted);
    }

    #[test]
    fn idle_workers_steal_queued_jobs() {
        // Job 0 pins worker 0 for 300 ms. Jobs 2,4,6,8 sit behind it in
        // worker 0's deque, so they can only finish before job 0 does if
        // the other worker steals them.
        let done = AtomicUsize::new(0);
        let observed = run_jobs((0..9).collect::<Vec<usize>>(), 2, |i, _| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(300));
                done.load(Ordering::SeqCst)
            } else {
                done.fetch_add(1, Ordering::SeqCst);
                0
            }
        });
        assert_eq!(
            observed[0], 8,
            "all queued jobs must have been stolen and finished while job 0 slept"
        );
    }
}
