//! A work-stealing thread-pool driver for batch jobs.
//!
//! Jobs are seeded round-robin into per-worker deques; an idle worker pops
//! from the front of its own deque and, when empty, steals from the back of
//! the fullest other deque. Because no job spawns further jobs, "every
//! deque empty" is a stable termination condition. Results land in a slot
//! array indexed by submission order, so the output is deterministic and
//! independent of scheduling, thread count, and completion order.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs every item of `items` through `run` on `workers` threads and
/// returns the results in submission order. `workers` is clamped to
/// `1..=items.len()`; with one worker the pool degenerates to a sequential
/// loop (no threads are spawned).
pub fn run_jobs<T, R, F>(items: Vec<T>, workers: usize, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run(i, item))
            .collect();
    }

    // Round-robin seeding keeps the initial load balanced; stealing fixes
    // whatever imbalance job runtimes introduce.
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back((i, item));
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let run = &run;
            // Named threads give trace spans (and debuggers) a stable
            // worker identity: spans recorded on this thread report
            // `weaver-worker-<n>` as their thread name.
            std::thread::Builder::new()
                .name(format!("weaver-worker-{me}"))
                .spawn_scoped(scope, move || loop {
                    // Own deque first (front), then steal (back of the
                    // fullest).
                    let next = queues[me].lock().unwrap().pop_front();
                    let (index, item) = match next.or_else(|| steal(queues, me)) {
                        Some(job) => job,
                        None => {
                            // Must happen inside the closure: the scope
                            // unblocks before this thread's TLS destructors
                            // run, so a drop-time flush could lose the last
                            // buffered spans to a caller draining the trace
                            // right after the batch returns.
                            weaver_obs::span::flush_thread();
                            return;
                        }
                    };
                    let result = run(index, item);
                    *results[index].lock().unwrap() = Some(result);
                })
                .expect("spawn batch worker");
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job ran exactly once")
        })
        .collect()
}

/// Steals one job from the back of the fullest deque other than `me`.
fn steal<T>(queues: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    let mut victim: Option<usize> = None;
    let mut longest = 0usize;
    for (w, queue) in queues.iter().enumerate() {
        if w == me {
            continue;
        }
        let len = queue.lock().unwrap().len();
        if len > longest {
            longest = len;
            victim = Some(w);
        }
    }
    queues[victim?].lock().unwrap().pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_submission_order() {
        for workers in [1, 2, 4, 7] {
            let items: Vec<usize> = (0..50).collect();
            let out = run_jobs(items, workers, |i, item| {
                assert_eq!(i, item);
                item * 2
            });
            assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_jobs((0..64).collect::<Vec<usize>>(), 4, |_, item| {
            counters[item].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_jobs(vec![1, 2], 16, |_, item| item + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let out = run_jobs(Vec::<u32>::new(), 4, |_, item| item);
        assert!(out.is_empty());
    }

    #[test]
    fn idle_workers_steal_queued_jobs() {
        // Job 0 pins worker 0 for 300 ms. Jobs 2,4,6,8 sit behind it in
        // worker 0's deque, so they can only finish before job 0 does if
        // the other worker steals them.
        let done = AtomicUsize::new(0);
        let observed = run_jobs((0..9).collect::<Vec<usize>>(), 2, |i, _| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(300));
                done.load(Ordering::SeqCst)
            } else {
                done.fetch_add(1, Ordering::SeqCst);
                0
            }
        });
        assert_eq!(
            observed[0], 8,
            "all queued jobs must have been stolen and finished while job 0 slept"
        );
    }
}
