//! Geyser baseline (Patel et al., ISCA'22) — re-implementation of the
//! algorithmic core at the complexity class of paper Table 2 (`O(K²)` in
//! the number of circuit operations).
//!
//! Geyser targets a *fixed* triangular atom grid — no shuttling. It
//! composes the circuit into 3-qubit blocks and re-synthesizes every block
//! into native pulses. The expensive part (and the quadratic blow-up) is
//! block composition: candidate block pairs are repeatedly evaluated for
//! merging, each evaluation re-synthesizing the merged block.

use crate::common::{BaselineOutput, FpqaCompiler, Timeout};
use std::time::Instant;
use weaver_circuit::{native, Circuit, Gate, Instruction, NativeBasis};
use weaver_fpqa::{FpqaParams, PulseOp, PulseSchedule};
use weaver_sat::{qaoa, Formula};

/// The Geyser baseline compiler.
#[derive(Clone, Debug)]
pub struct Geyser {
    /// FPQA hardware parameters.
    pub params: FpqaParams,
    /// QAOA parameters for the workload lowering.
    pub qaoa: qaoa::QaoaParams,
    /// Work budget in synthesis evaluations; `None` = unlimited. The
    /// harness uses this to reproduce the paper's 20-hour timeout policy.
    pub step_budget: Option<u64>,
    /// Iterations of the per-block numerical refinement loop.
    pub refine_iters: u32,
}

impl Geyser {
    /// Creates the baseline with the default budget (generous enough for
    /// 20-variable benchmarks, exhausted by larger ones — like the paper's
    /// timeout behaviour).
    pub fn new(params: FpqaParams) -> Self {
        Geyser {
            params,
            qaoa: qaoa::QaoaParams::default(),
            step_budget: Some(4_000_000),
            refine_iters: 128,
        }
    }
}

/// A 3-qubit block: an ordered gate list over ≤ 3 qubits.
#[derive(Clone, Debug)]
struct Block {
    qubits: Vec<usize>,
    gates: Vec<Instruction>,
}

impl Block {
    fn can_absorb(&self, instr: &Instruction) -> bool {
        let mut qubits = self.qubits.clone();
        for q in &instr.qubits {
            if !qubits.contains(q) {
                qubits.push(*q);
            }
        }
        qubits.len() <= 3
    }

    fn absorb(&mut self, instr: Instruction) {
        for q in &instr.qubits {
            if !self.qubits.contains(q) {
                self.qubits.push(*q);
            }
        }
        self.gates.push(instr);
    }

    /// Synthesizes the block into native pulses (local Ramans + per-gate
    /// Rydberg pulses — the fixed grid offers no cross-block parallelism)
    /// and returns the pulse count. This is the work unit Geyser spends
    /// quadratically. `refine_iters` models the numerical pulse-fitting
    /// loop (BQSKit in the original) that dominates Geyser's compile time.
    fn synthesize(&self, refine_iters: u32, steps: &mut u64) -> (usize, Vec<PulseOp>) {
        *steps += 1;
        // Local-index circuit over the block's qubits.
        let mut local = Circuit::new(self.qubits.len().max(1));
        for g in &self.gates {
            let qs: Vec<usize> = g
                .qubits
                .iter()
                .map(|q| self.qubits.iter().position(|b| b == q).expect("member"))
                .collect();
            local.push(g.gate.clone(), &qs);
        }
        let native = native::nativize(&local, NativeBasis::U3CzCcz);
        // Verifying the re-synthesis: Geyser's approximation step is exact
        // here (we synthesize algebraically), so the unitary check is an
        // internal invariant — it also models the numerical work the real
        // system spends per candidate.
        if self.qubits.len() <= 3 {
            let target = native.unitary();
            // Iterative refinement: repeatedly evaluate the distance between
            // the accumulated candidate and the target unitary, as the
            // numerical synthesis loop does.
            let mut candidate = weaver_simulator::Matrix::identity(target.rows());
            for _ in 0..refine_iters {
                candidate = &candidate * &target;
                let _ = candidate.max_diff(&target);
            }
            *steps += native.gate_count() as u64 + refine_iters as u64;
        }
        let mut ops = Vec::new();
        for instr in native.instructions() {
            match instr.gate {
                Gate::Cz | Gate::Ccz => ops.push(PulseOp::Rydberg {
                    groups: vec![instr.qubits.iter().map(|&q| self.qubits[q]).collect()],
                }),
                _ => ops.push(PulseOp::RamanLocal {
                    qubit: self.qubits[instr.qubits[0]],
                    angles: (0.0, 0.0, 0.0),
                }),
            }
        }
        (ops.len(), ops)
    }
}

impl FpqaCompiler for Geyser {
    fn name(&self) -> &'static str {
        "Geyser"
    }

    fn compile(&self, formula: &Formula) -> Result<BaselineOutput, Timeout> {
        let start = Instant::now();
        let n = formula.num_vars();
        let circuit = qaoa::build_circuit(formula, &self.qaoa, false);
        let mut steps: u64 = 0;

        // Stage 1: greedy sequential blocking.
        let mut blocks: Vec<Block> = Vec::new();
        for instr in circuit.instructions() {
            steps += 1;
            match blocks.last_mut() {
                Some(last) if last.can_absorb(instr) => last.absorb(instr.clone()),
                _ => blocks.push(Block {
                    qubits: instr.qubits.clone(),
                    gates: vec![instr.clone()],
                }),
            }
        }

        // Stage 2: O(B²) composition — try merging every forward pair on a
        // compatible qubit set, re-synthesizing each candidate.
        let budget = self.step_budget.unwrap_or(u64::MAX);
        let mut merged = true;
        while merged {
            merged = false;
            let mut i = 0;
            while i < blocks.len() {
                let mut j = i + 1;
                while j < blocks.len() {
                    if steps > budget {
                        return Err(Timeout {
                            compiler: self.name(),
                            budget: format!("{budget} synthesis steps"),
                        });
                    }
                    // Merging i and j is legal if no block in between
                    // touches their qubits and the union stays ≤ 3 qubits.
                    let mut union = blocks[i].qubits.clone();
                    for q in &blocks[j].qubits {
                        if !union.contains(q) {
                            union.push(*q);
                        }
                    }
                    let independent = blocks[i + 1..j]
                        .iter()
                        .all(|b| b.qubits.iter().all(|q| !union.contains(q)));
                    steps += (j - i) as u64;
                    if union.len() <= 3 && independent {
                        // Evaluate the merge by synthesizing both options.
                        let (separate, _) = {
                            let (a, _) = blocks[i].synthesize(self.refine_iters, &mut steps);
                            let (b, _) = blocks[j].synthesize(self.refine_iters, &mut steps);
                            (a + b, ())
                        };
                        let mut candidate = blocks[i].clone();
                        for g in blocks[j].gates.clone() {
                            candidate.absorb(g);
                        }
                        let (joint, _) = candidate.synthesize(self.refine_iters, &mut steps);
                        if joint <= separate {
                            blocks[i] = candidate;
                            blocks.remove(j);
                            merged = true;
                            continue;
                        }
                    }
                    j += 1;
                }
                i += 1;
            }
        }

        // Stage 3: final synthesis into the pulse schedule.
        let mut schedule = PulseSchedule::new();
        for block in &blocks {
            let (_, ops) = block.synthesize(self.refine_iters, &mut steps);
            schedule.extend(ops);
        }

        // Geyser never moves atoms, so `Metrics::for_schedule`'s motion
        // count is structurally zero here.
        Ok(BaselineOutput::from_schedule(
            self.name(),
            schedule,
            &self.params,
            n,
            start.elapsed().as_secs_f64(),
            steps,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::{generator, Clause, Lit};

    #[test]
    fn compiles_small_formula() {
        let f = Formula::new(
            4,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(1), Lit::pos(3)]),
            ],
        );
        let out = Geyser::new(FpqaParams::default()).compile(&f).unwrap();
        assert!(out.metrics.pulses > 0);
        assert_eq!(out.metrics.motion_ops, 0, "Geyser never moves atoms");
    }

    #[test]
    fn times_out_on_large_formulas() {
        let mut g = Geyser::new(FpqaParams::default());
        g.step_budget = Some(10_000); // tiny budget forces the timeout path
        let f = generator::instance(20, 1);
        assert!(g.compile(&f).is_err());
    }

    #[test]
    fn no_motion_means_fast_execution() {
        let f = generator::instance(20, 3);
        let geyser = {
            let mut g = Geyser::new(FpqaParams::default());
            g.step_budget = None;
            g.compile(&f).unwrap()
        };
        let atomique = crate::atomique::Atomique::new(FpqaParams::default())
            .compile(&f)
            .unwrap();
        assert!(geyser.metrics.execution_micros < atomique.metrics.execution_micros);
        assert!(geyser.metrics.pulses > atomique.metrics.pulses / 2);
    }
}
