//! Shared interface of the baseline FPQA compilers (paper §8.1).

use std::fmt;
use weaver_core::Metrics;
use weaver_fpqa::PulseSchedule;
use weaver_sat::Formula;

/// Result of a baseline compilation.
#[derive(Clone, Debug)]
pub struct BaselineOutput {
    /// Compiler name as used in the paper's figures.
    pub name: &'static str,
    /// Evaluation metrics (same struct as Weaver's pipeline).
    pub metrics: Metrics,
    /// Low-level schedule (for pulse counting and timing).
    pub schedule: PulseSchedule,
}

impl BaselineOutput {
    /// Assembles a baseline result from its pulse schedule, deriving the
    /// metrics through the one shared [`Metrics::for_schedule`] constructor
    /// (every baseline previously hand-rolled the same field list).
    pub fn from_schedule(
        name: &'static str,
        schedule: PulseSchedule,
        params: &weaver_fpqa::FpqaParams,
        num_atoms: usize,
        compilation_seconds: f64,
        steps: u64,
    ) -> Self {
        let metrics =
            Metrics::for_schedule(&schedule, params, num_atoms, compilation_seconds, steps);
        BaselineOutput {
            name,
            metrics,
            schedule,
        }
    }
}

/// A baseline failed to finish within its budget — the paper marks these
/// points `✗` (Geyser and DPQA beyond 20 variables).
#[derive(Clone, Debug, PartialEq)]
pub struct Timeout {
    /// The compiler that timed out.
    pub compiler: &'static str,
    /// Steps or seconds it was allowed.
    pub budget: String,
}

impl fmt::Display for Timeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} timed out (budget {})", self.compiler, self.budget)
    }
}

impl std::error::Error for Timeout {}

/// The common compiler interface the benchmark harness drives.
pub trait FpqaCompiler {
    /// Display name matching the paper's legends.
    fn name(&self) -> &'static str;

    /// Compiles a Max-3SAT formula to an FPQA pulse program.
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] when the compiler exhausts its budget, mirroring
    /// the paper's 20-hour timeout policy.
    fn compile(&self, formula: &Formula) -> Result<BaselineOutput, Timeout>;
}
