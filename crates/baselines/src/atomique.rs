//! Atomique baseline (Wang et al. 2024) — re-implementation of the
//! algorithmic core at the complexity class of paper Table 2 (`O(N³)`,
//! SABRE-lineage mapping on reconfigurable atom arrays).
//!
//! Atomique compiles generic 2-qubit-gate circuits: qubits live on a square
//! atom grid and two-qubit gates execute by *moving* one atom next to the
//! other (no SWAPs), one Rydberg pulse per gate. A periodic layout
//! refinement sweep re-places every qubit against a look-ahead window of
//! upcoming gates — the cubic term.

use crate::common::{BaselineOutput, FpqaCompiler, Timeout};
use std::time::Instant;
use weaver_circuit::{native, NativeBasis};
use weaver_fpqa::{FpqaParams, PulseOp, PulseSchedule};
use weaver_sat::{qaoa, Formula};

/// The Atomique baseline compiler.
#[derive(Clone, Debug)]
pub struct Atomique {
    /// FPQA hardware parameters (shared with Weaver for fairness).
    pub params: FpqaParams,
    /// Grid spacing in µm.
    pub spacing: f64,
    /// QAOA parameters for the workload lowering.
    pub qaoa: qaoa::QaoaParams,
}

impl Atomique {
    /// Creates the baseline with default parameters.
    pub fn new(params: FpqaParams) -> Self {
        Atomique {
            params,
            spacing: 30.0,
            qaoa: qaoa::QaoaParams::default(),
        }
    }
}

impl FpqaCompiler for Atomique {
    fn name(&self) -> &'static str {
        "Atomique"
    }

    fn compile(&self, formula: &Formula) -> Result<BaselineOutput, Timeout> {
        let start = Instant::now();
        let n = formula.num_vars();
        let circuit = qaoa::build_circuit(formula, &self.qaoa, false);
        let nativized = native::nativize(&circuit, NativeBasis::U3Cz);

        // Square grid of cells with spare rows/columns so atoms can always
        // park next to a partner; qubit i starts at cell i.
        let width = (n as f64).sqrt().ceil() as usize + 1;
        let height = n.div_ceil(width) + 1;
        let cells = width * height;
        let mut pos: Vec<usize> = (0..n).collect(); // qubit -> cell
        let mut cell_of: Vec<Option<usize>> = (0..cells)
            .map(|c| if c < n { Some(c) } else { None })
            .collect();
        let home_cell: Vec<Option<usize>> = (0..n).map(Some).collect();

        let cell_xy = |c: usize| ((c % width) as f64, (c / width) as f64);
        let dist = |a: usize, b: usize| {
            let (ax, ay) = cell_xy(a);
            let (bx, by) = cell_xy(b);
            ((ax - bx).abs() + (ay - by).abs()) * self.spacing
        };

        // Gate stream: (is_two_qubit, qubits).
        let gates: Vec<(bool, Vec<usize>)> = nativized
            .instructions()
            .map(|i| (i.gate.num_qubits() == 2, i.qubits.clone()))
            .collect();
        let two_qubit_positions: Vec<usize> = gates
            .iter()
            .enumerate()
            .filter(|(_, (is2, _))| *is2)
            .map(|(i, _)| i)
            .collect();

        let mut schedule = PulseSchedule::new();
        let mut steps: u64 = 0;
        let window = (4 * n).max(8);
        let mut processed_2q = 0usize;

        for (gi, (is2, qubits)) in gates.iter().enumerate() {
            if !is2 {
                schedule.push(PulseOp::RamanLocal {
                    qubit: qubits[0],
                    angles: (0.0, 0.0, 0.0),
                });
                continue;
            }
            let (a, b) = (qubits[0], qubits[1]);
            processed_2q += 1;

            // Periodic O(N³) layout refinement: every N two-qubit gates,
            // re-place each qubit into the free cell minimizing distance to
            // its partners in the look-ahead window.
            if processed_2q % (n / 2).max(1) == 0 {
                for q in 0..n {
                    let mut best_cell = pos[q];
                    let mut best_cost = f64::MAX;
                    for (c, occupant) in cell_of.iter().enumerate() {
                        if occupant.is_some() && *occupant != Some(q) {
                            continue;
                        }
                        let mut cost = dist(pos[q], c) * 0.1;
                        for &future in two_qubit_positions.iter().filter(|&&p| p > gi).take(window)
                        {
                            steps += 1;
                            let (_, fq) = &gates[future];
                            if fq.contains(&q) {
                                let other = if fq[0] == q { fq[1] } else { fq[0] };
                                cost += dist(c, pos[other]);
                            }
                        }
                        if cost < best_cost {
                            best_cost = cost;
                            best_cell = c;
                        }
                    }
                    if best_cell != pos[q] {
                        cell_of[pos[q]] = None;
                        cell_of[best_cell] = Some(q);
                        let d = dist(pos[q], best_cell);
                        pos[q] = best_cell;
                        schedule.push(PulseOp::Transfer);
                        schedule.push(PulseOp::Shuttle { distance: d });
                        schedule.push(PulseOp::Transfer);
                    }
                }
            }

            // Bring a next to b if they are not neighbours: move a to the
            // free cell adjacent to b with the lowest cost over the window.
            if dist(pos[a], pos[b]) > self.spacing + 1e-9 {
                let (bx, by) = ((pos[b] % width) as i64, (pos[b] / width) as i64);
                let mut best: Option<(usize, f64)> = None;
                for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                    let (cx, cy) = (bx + dx, by + dy);
                    if cx < 0 || cy < 0 || cx >= width as i64 || cy >= height as i64 {
                        continue;
                    }
                    let c = cy as usize * width + cx as usize;
                    if cell_of[c].is_some() {
                        continue;
                    }
                    let mut cost = dist(pos[a], c);
                    for &future in two_qubit_positions.iter().filter(|&&p| p > gi).take(window) {
                        steps += 1;
                        let (_, fq) = &gates[future];
                        if fq.contains(&a) {
                            let other = if fq[0] == a { fq[1] } else { fq[0] };
                            cost += 0.2 * dist(c, pos[other]);
                        }
                    }
                    if best.is_none() || cost < best.unwrap().1 {
                        best = Some((c, cost));
                    }
                }
                // A full grid with no free neighbour: evict by moving b
                // instead (rare; grid has ≥ n cells and gates touch 2).
                let target = match best {
                    Some((c, _)) => c,
                    None => {
                        // Move a anywhere free, then b next to it.
                        let free = cell_of
                            .iter()
                            .position(|c| c.is_none())
                            .expect("grid larger than qubit count");
                        free
                    }
                };
                let d = dist(pos[a], target);
                cell_of[pos[a]] = None;
                cell_of[target] = Some(a);
                pos[a] = target;
                schedule.push(PulseOp::Transfer);
                schedule.push(PulseOp::Shuttle { distance: d });
                schedule.push(PulseOp::Transfer);
            }
            // One Rydberg pulse per gate (Atomique executes gate-by-gate).
            schedule.push(PulseOp::Rydberg {
                groups: vec![vec![a, b]],
            });
            // The visiting atom cannot stay parked next to its partner
            // through later global pulses: it returns to a home cell
            // (Atomique's arrays move back and forth between interaction
            // and storage configurations each stage).
            if let Some(home) = home_cell[a] {
                if home != pos[a] && cell_of[home].is_none() {
                    let d = dist(pos[a], home);
                    cell_of[pos[a]] = None;
                    cell_of[home] = Some(a);
                    pos[a] = home;
                    schedule.push(PulseOp::Transfer);
                    schedule.push(PulseOp::Shuttle { distance: d });
                    schedule.push(PulseOp::Transfer);
                }
            }
        }

        Ok(BaselineOutput::from_schedule(
            self.name(),
            schedule,
            &self.params,
            n,
            start.elapsed().as_secs_f64(),
            steps,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::generator;

    #[test]
    fn compiles_uf20() {
        let f = generator::instance(20, 1);
        let out = Atomique::new(FpqaParams::default()).compile(&f).unwrap();
        assert!(out.metrics.eps > 0.0 && out.metrics.eps <= 1.0);
        assert!(out.metrics.pulses > 0);
        assert!(out.metrics.motion_ops > 0);
        assert!(out.metrics.steps > 0);
    }

    #[test]
    fn one_rydberg_pulse_per_two_qubit_gate() {
        let f = generator::instance(20, 2);
        let out = Atomique::new(FpqaParams::default()).compile(&f).unwrap();
        let circuit = qaoa::build_circuit(&f, &qaoa::QaoaParams::default(), false);
        let nativized =
            weaver_circuit::native::nativize(&circuit, weaver_circuit::NativeBasis::U3Cz);
        let rydbergs = out
            .schedule
            .ops()
            .iter()
            .filter(|o| matches!(o, PulseOp::Rydberg { .. }))
            .count();
        assert_eq!(rydbergs, nativized.two_qubit_count());
    }

    #[test]
    fn steps_grow_superlinearly() {
        let c = |n: usize| {
            Atomique::new(FpqaParams::default())
                .compile(&generator::instance(n, 1))
                .unwrap()
                .metrics
                .steps as f64
        };
        let s20 = c(20);
        let s50 = c(50);
        // O(N³)-class: 2.5× the variables should cost well over 2.5× steps.
        assert!(s50 / s20 > 4.0, "s20={s20} s50={s50}");
    }
}
