//! DPQA baseline (Tan et al., Quantum 2024) — re-implementation of the
//! algorithmic core at the complexity class of paper Table 2 (`O(2^K)`,
//! solver-based compilation).
//!
//! DPQA formulates placement/scheduling as an SMT problem over every gate
//! and stage and solves it exactly, which makes its solutions highly
//! parallel and movement-heavy but blows up beyond small instances (paper
//! Fig. 8: 15 h at 20 variables, ✗ above). Two aspects are modelled:
//!
//! * the **search**: an anytime branch-and-bound minimization of the number
//!   of execution stages (clause coloring), strictly better-or-equal to
//!   Weaver's DSatur heuristic — this is where DPQA's quality edge at small
//!   sizes comes from;
//! * the **intractability cliff**: the solver's encoding grows with
//!   `gates × stages`; above [`Dpqa::encoding_cap`] the instance is
//!   declared timed out, reproducing the paper's 20-hour-timeout behaviour
//!   at laptop scale (see DESIGN.md for the substitution note).

use crate::common::{BaselineOutput, FpqaCompiler, Timeout};
use std::time::Instant;
use weaver_core::codegen::{self, CodegenOptions};
use weaver_core::coloring::{conflict_graph, dsatur, ClauseColoring, ConflictGraph};
use weaver_fpqa::FpqaParams;
use weaver_sat::{qaoa, Formula};

/// The DPQA baseline compiler.
#[derive(Clone, Debug)]
pub struct Dpqa {
    /// FPQA hardware parameters.
    pub params: FpqaParams,
    /// QAOA parameters for the workload lowering.
    pub qaoa: qaoa::QaoaParams,
    /// Budget for the anytime exact search, in branch-and-bound nodes.
    pub node_budget: u64,
    /// Solver-encoding cap (`two-qubit gates × stages`); larger instances
    /// time out, as in the paper's evaluation.
    pub encoding_cap: u64,
}

impl Dpqa {
    /// Creates the baseline with defaults that finish the 20-variable suite
    /// and time out beyond it (paper Fig. 8 behaviour).
    pub fn new(params: FpqaParams) -> Self {
        Dpqa {
            params,
            qaoa: qaoa::QaoaParams::default(),
            node_budget: 1_000_000,
            encoding_cap: 20_000,
        }
    }
}

/// Exact minimum graph coloring by DSatur-style branch and bound.
/// Returns `Some((coloring, nodes))` when optimality is proven within the
/// node budget, `None` otherwise.
pub fn exact_coloring(graph: &ConflictGraph, budget: u64) -> Option<(ClauseColoring, u64)> {
    let (coloring, nodes, proven) = branch_and_bound(graph, budget);
    if proven {
        Some((coloring, nodes))
    } else {
        None
    }
}

/// Anytime variant: always returns the best coloring found within the
/// budget (at worst the DSatur heuristic), plus nodes explored and whether
/// optimality was proven.
pub fn anytime_coloring(graph: &ConflictGraph, budget: u64) -> (ClauseColoring, u64, bool) {
    branch_and_bound(graph, budget)
}

fn branch_and_bound(graph: &ConflictGraph, budget: u64) -> (ClauseColoring, u64, bool) {
    let n = graph.len();
    if n == 0 {
        return (ClauseColoring::new(Vec::new()), 0, true);
    }
    let heuristic = dsatur(graph);
    let mut best = heuristic.colors.clone();
    let mut best_k = heuristic.num_colors;
    let clique = greedy_clique(graph);

    struct Search<'a> {
        graph: &'a ConflictGraph,
        colors: Vec<usize>,
        best: Vec<usize>,
        best_k: usize,
        clique: usize,
        nodes: u64,
        budget: u64,
    }

    impl Search<'_> {
        /// Returns false when the budget ran out.
        fn branch(&mut self, used: usize) -> bool {
            self.nodes += 1;
            if self.nodes > self.budget {
                return false;
            }
            if self.best_k == self.clique {
                return true; // clique bound met: provably optimal
            }
            // Most saturated uncolored vertex.
            let n = self.graph.len();
            let mut pick = None;
            let mut pick_key = (0usize, 0usize);
            for v in 0..n {
                if self.colors[v] != usize::MAX {
                    continue;
                }
                let mut sat: Vec<usize> = self
                    .graph
                    .neighbors(v)
                    .iter()
                    .map(|&u| self.colors[u])
                    .filter(|&c| c != usize::MAX)
                    .collect();
                sat.sort_unstable();
                sat.dedup();
                let key = (sat.len(), self.graph.degree(v));
                if pick.is_none() || key > pick_key {
                    pick = Some(v);
                    pick_key = key;
                }
            }
            let Some(v) = pick else {
                if used < self.best_k {
                    self.best_k = used;
                    self.best.clone_from(&self.colors);
                }
                return true;
            };
            let forbidden: Vec<usize> = self
                .graph
                .neighbors(v)
                .iter()
                .map(|&u| self.colors[u])
                .filter(|&c| c != usize::MAX)
                .collect();
            let max_color = (used + 1).min(self.best_k.saturating_sub(1));
            for c in 0..max_color {
                if forbidden.contains(&c) {
                    continue;
                }
                self.colors[v] = c;
                let new_used = used.max(c + 1);
                let ok = new_used >= self.best_k || self.branch(new_used);
                self.colors[v] = usize::MAX;
                if !ok {
                    return false;
                }
            }
            true
        }
    }

    let mut search = Search {
        graph,
        colors: vec![usize::MAX; n],
        best: std::mem::take(&mut best),
        best_k,
        clique,
        nodes: 0,
        budget,
    };
    let proven = search.branch(0);
    best = search.best;
    best_k = search.best_k;
    debug_assert_eq!(
        best_k,
        best.iter().copied().max().map_or(0, |m| m + 1),
        "branch-and-bound colors are dense"
    );
    (ClauseColoring::new(best), search.nodes, proven)
}

fn greedy_clique(graph: &ConflictGraph) -> usize {
    let n = graph.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let mut clique: Vec<usize> = Vec::new();
    for &v in &order {
        if clique
            .iter()
            .all(|&u| graph.neighbors(v).binary_search(&u).is_ok())
        {
            clique.push(v);
        }
    }
    clique.len()
}

impl FpqaCompiler for Dpqa {
    fn name(&self) -> &'static str {
        "DPQA"
    }

    fn compile(&self, formula: &Formula) -> Result<BaselineOutput, Timeout> {
        let start = Instant::now();

        // Intractability cliff: encoding size = 2q gates × stage bound.
        let circuit = qaoa::build_circuit(formula, &self.qaoa, false);
        let two_qubit = circuit.two_qubit_count() as u64;
        let graph = conflict_graph(formula);
        let stage_bound = dsatur(&graph).num_colors as u64;
        let encoding = two_qubit * stage_bound;
        if encoding > self.encoding_cap {
            return Err(Timeout {
                compiler: self.name(),
                budget: format!(
                    "encoding {encoding} exceeds cap {} (gates {two_qubit} × stages {stage_bound})",
                    self.encoding_cap
                ),
            });
        }

        // Anytime exact stage minimization.
        let (coloring, nodes, _proven) = anytime_coloring(&graph, self.node_budget);

        // Execute the optimal stages with 2-qubit gates only and maximal
        // movement (the DPQA execution style).
        let options = CodegenOptions {
            compression: false,
            parallel_shuttling: true,
            dsatur: false,
            qaoa: self.qaoa.clone(),
            layout: weaver_core::plan::SiteLayout::for_default_params(),
            measure: false,
        };
        let compiled =
            codegen::compile_formula_with_coloring(formula, &self.params, &options, coloring);

        Ok(BaselineOutput::from_schedule(
            self.name(),
            compiled.schedule,
            &self.params,
            formula.num_vars(),
            start.elapsed().as_secs_f64(),
            nodes + compiled.steps,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_core::coloring::is_valid_coloring;
    use weaver_sat::generator;

    #[test]
    fn exact_coloring_on_known_graphs() {
        // Triangle: 3 colors.
        let triangle = ConflictGraph::from_adjacency(&[vec![1, 2], vec![0, 2], vec![0, 1]]);
        let (c, _) = exact_coloring(&triangle, 1_000_000).unwrap();
        assert_eq!(c.num_colors, 3);
        // 5-cycle: chromatic number 3 (odd cycle).
        let c5: Vec<Vec<usize>> = (0..5).map(|i| vec![(i + 4) % 5, (i + 1) % 5]).collect();
        let c5 = ConflictGraph::from_adjacency(&c5);
        let (c, _) = exact_coloring(&c5, 1_000_000).unwrap();
        assert_eq!(c.num_colors, 3);
        assert!(is_valid_coloring(&c5, &c));
        // Bipartite K3,3: 2 colors.
        let mut k33 = vec![Vec::new(); 6];
        for a in 0..3 {
            for b in 3..6 {
                k33[a].push(b);
                k33[b].push(a);
            }
        }
        let (c, _) = exact_coloring(&ConflictGraph::from_adjacency(&k33), 1_000_000).unwrap();
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn anytime_never_worse_than_dsatur() {
        for variant in 1..=3 {
            let f = generator::instance(20, variant);
            let g = conflict_graph(&f);
            let heuristic = dsatur(&g);
            let (best, _, _) = anytime_coloring(&g, 100_000);
            assert!(best.num_colors <= heuristic.num_colors);
            assert!(is_valid_coloring(&g, &best));
        }
    }

    #[test]
    fn large_instances_hit_the_encoding_cliff() {
        let f = generator::instance(50, 1);
        let err = Dpqa::new(FpqaParams::default()).compile(&f).unwrap_err();
        assert_eq!(err.compiler, "DPQA");
    }

    #[test]
    fn compiles_uf20_within_defaults() {
        let f = generator::instance(20, 1);
        let out = Dpqa::new(FpqaParams::default()).compile(&f).unwrap();
        assert!(out.metrics.eps > 0.0);
        assert!(out.metrics.motion_ops > 0);
        assert!(out.metrics.steps > 0);
    }
}
