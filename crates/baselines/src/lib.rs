//! Baseline FPQA compilers used in the Weaver evaluation (paper §8.1):
//! re-implementations of the algorithmic cores of **Geyser** (ISCA'22),
//! **Atomique** (2024), and **DPQA** (Quantum 2024) at the computational
//! complexity classes the paper reports in Table 2.
//!
//! All baselines share the [`FpqaCompiler`] trait, the same FPQA hardware
//! parameters and workload lowering as Weaver, and the same pulse-schedule
//! timing/noise model, so the comparison is apples-to-apples.
//!
//! # Example
//!
//! ```
//! use weaver_baselines::{Atomique, FpqaCompiler};
//! use weaver_fpqa::FpqaParams;
//! use weaver_sat::generator;
//!
//! let f = generator::instance(20, 1);
//! let out = Atomique::new(FpqaParams::default()).compile(&f).unwrap();
//! assert!(out.metrics.eps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod atomique;
mod common;
pub mod dpqa;
pub mod geyser;

pub use atomique::Atomique;
pub use common::{BaselineOutput, FpqaCompiler, Timeout};
pub use dpqa::Dpqa;
pub use geyser::Geyser;
