//! Offline stand-in for the subset of the `rand` 0.8 API used in this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::{gen_bool, gen_range}` methods over integer and float ranges.
//!
//! The build environment has no crates.io access, so this crate keeps the
//! same paths and signatures as the real `rand` for the calls the workspace
//! makes. It is deterministic and seedable but is **not** a statistically
//! vetted or cryptographic generator. Replacing it with the real crate only
//! requires editing `[workspace.dependencies]` in the root `Cargo.toml`.

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator core: the single source of raw random bits.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                // Modulo bias is negligible for the workload sizes used here
                // (spans far below 2^64).
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256** seeded via SplitMix64).
    ///
    /// Stands in for `rand::rngs::StdRng`; same name and construction API,
    /// different (but high-quality, non-cryptographic) stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.2..1.0f64);
            assert!((0.2..1.0).contains(&f));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 hit {hits}/10000");
    }
}
