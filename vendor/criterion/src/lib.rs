//! Offline stand-in for the subset of the `criterion` benchmark API used by
//! `weaver-bench`: `Criterion`, benchmark groups, `BenchmarkId`, `Bencher`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no crates.io access, so this crate provides the
//! same call surface with a simple wall-clock measurement loop (a warm-up
//! pass plus `sample_size` timed samples, median reported) instead of
//! criterion's statistical machinery. `cargo bench` therefore still produces
//! useful per-benchmark timings, just without outlier analysis or HTML
//! reports.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to every benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.default_sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Run a benchmark that borrows a setup input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (reporting happens eagerly; this is for API parity).
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        eprintln!("  {label}: no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    eprintln!(
        "  {label}: median {median:?} over {} samples",
        samples.len()
    );
}

/// Times one closure; handed to benchmark bodies by the harness.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine` once per sample after a single warm-up call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Identify a benchmark by parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "{name}/{}", self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// Bundle benchmark functions into a single runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
