//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace's property tests: the [`strategy::Strategy`] trait with the
//! `prop_map` / `prop_flat_map` / `prop_filter_map` combinators, range and
//! tuple strategies, `prop::collection::{vec, hash_set}`, `any::<bool>()`,
//! and the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! macros.
//!
//! The build environment has no crates.io access. This crate keeps the same
//! call surface so the seed's `tests/property_tests.rs` compiles and runs
//! unchanged, but it generates values from a fixed-seed deterministic RNG and
//! reports failures by panicking **without shrinking**. Swapping in the real
//! proptest only requires editing `[workspace.dependencies]` in the root
//! `Cargo.toml`.

#![warn(missing_docs)]

/// Deterministic RNG and run configuration.
pub mod test_runner {
    /// Run configuration; stands in for `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator driving all value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed seed, so test runs are reproducible.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_1234_ABCD_EF01,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// deterministic-RNG-to-value function plus combinators.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F, O>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map,
                _out: PhantomData,
            }
        }

        /// Generate a value, then generate from the strategy it maps to.
        fn prop_flat_map<S2, F>(self, map: F) -> FlatMap<Self, F, S2>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap {
                source: self,
                map,
                _out: PhantomData,
            }
        }

        /// Keep only values for which `map` returns `Some`, retrying others.
        fn prop_filter_map<O, F>(self, reason: &'static str, map: F) -> FilterMap<Self, F, O>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                source: self,
                map,
                reason,
                _out: PhantomData,
            }
        }

        /// Erase the concrete strategy type behind a box.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Box a strategy; used by the `prop_oneof!` macro expansion.
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
        Box::new(strategy)
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F, O> {
        source: S,
        map: F,
        _out: PhantomData<fn() -> O>,
    }

    impl<S, F, O> Strategy for Map<S, F, O>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F, S2> {
        source: S,
        map: F,
        _out: PhantomData<fn() -> S2>,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F, S2>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Output of [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F, O> {
        source: S,
        map: F,
        reason: &'static str,
        _out: PhantomData<fn() -> O>,
    }

    impl<S, F, O> Strategy for FilterMap<S, F, O>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.map)(self.source.new_value(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map({:?}) rejected 10000 consecutive values",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed strategies; built by `prop_oneof!`.
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `Arbitrary` and the [`any`] entry point.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy, as in `proptest::arbitrary`.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Canonical strategy for `bool`: fair coin.
    #[derive(Clone, Debug, Default)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

/// Collection strategies (`prop::collection::{vec, hash_set}`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size interval for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn choose(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64 + 1) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.choose(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    ///
    /// The element strategy's domain must contain at least `size.min`
    /// distinct values, as in real proptest.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.choose(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.element.new_value(rng));
                attempts += 1;
                if attempts > 10_000 {
                    assert!(
                        set.len() >= self.size.min,
                        "hash_set strategy could not reach minimum size {} \
                         (element domain too small?)",
                        self.size.min
                    );
                    break;
                }
            }
            set
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-style access (`prop::collection::vec`), as in proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs (no shrinking on failure, unlike real proptest).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::new_value(&($strategy), &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let v = Strategy::new_value(&(3..9usize), &mut rng);
            assert!((3..9).contains(&v));
            let s = Strategy::new_value(&prop::collection::hash_set(0..5usize, 1..=3), &mut rng);
            assert!((1..=3).contains(&s.len()));
            let xs = Strategy::new_value(&prop::collection::vec(any::<bool>(), 4), &mut rng);
            assert_eq!(xs.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro front end compiles and runs: oneof + map + filter_map.
        #[test]
        fn macro_roundtrip(x in 0usize..10, flag in any::<bool>()) {
            let s = prop_oneof![
                (0usize..5).prop_map(|v| v * 2),
                (0usize..5).prop_filter_map("odd", |v| (v % 2 == 1).then_some(v)),
            ];
            let mut rng = crate::test_runner::TestRng::deterministic();
            let v = Strategy::new_value(&s, &mut rng);
            prop_assert!(v < 10, "{v} out of range");
            prop_assert!(x < 10);
            prop_assert_ne!(x + usize::from(flag), 11);
        }
    }
}
