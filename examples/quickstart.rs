//! Quickstart: compile a SATLIB-style Max-3SAT benchmark for an FPQA,
//! verify the compiled program with the wChecker, and print the compiled
//! wQasm together with the paper's three metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use weaver::prelude::*;

fn main() {
    // uf20-01: 20 variables, 91 clauses at the SATLIB phase-transition
    // ratio (see weaver::sat::generator for the substitution note).
    let formula = generator::instance(20, 1);
    println!(
        "benchmark: uf20-01 — {} variables, {} clauses",
        formula.num_vars(),
        formula.num_clauses()
    );

    // Compile down the FPQA path: clause coloring → color shuttling →
    // 3-qubit gate compression → wQasm + pulse schedule.
    let weaver = Weaver::new();
    let result = weaver.compile_fpqa(&formula);

    println!("\n--- metrics -------------------------------------------");
    println!(
        "compilation time : {:.4} s",
        result.metrics.compilation_seconds
    );
    println!(
        "execution time   : {:.4} s",
        result.metrics.execution_micros * 1e-6
    );
    println!("EPS              : {:.4}", result.metrics.eps);
    println!("laser pulses     : {}", result.metrics.pulses);
    println!("motion ops       : {}", result.metrics.motion_ops);
    println!("colors (stages)  : {}", result.compiled.coloring.num_colors);

    // Verify with the wChecker: every annotation is re-simulated on a fresh
    // device model and pulses are translated back to logical gates.
    let report = weaver.verify(&result, &formula);
    println!("\n--- wChecker ------------------------------------------");
    println!("pulses checked   : {}", report.pulses_checked);
    println!("motions checked  : {}", report.motions_checked);
    println!(
        "verdict          : {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    assert!(report.passed(), "checker found: {:?}", report.errors);

    // The compiled program is ordinary wQasm text.
    let text = weaver::wqasm::print(&result.compiled.program);
    let head: String = text.lines().take(12).collect::<Vec<_>>().join("\n");
    println!(
        "\n--- compiled wQasm (first 12 lines of {}) ----",
        text.lines().count()
    );
    println!("{head}\n...");
}
