//! Batch compilation through `weaver-engine`: compile a suite of Max-3SAT
//! instances across all cores with a content-addressed artifact cache,
//! then rerun the suite to show warm-cache throughput.
//!
//! ```text
//! cargo run --release --example batch_compile
//! ```

use weaver::engine::{CompileJob, Engine, EngineConfig};
use weaver::sat::generator;

fn main() {
    // The same eight 20-variable instances as `tests/fixtures/` and the
    // tracked `BENCH_engine.json` baseline, wChecker enabled.
    let jobs: Vec<CompileJob> = (1..=8)
        .map(|v| {
            let mut job =
                CompileJob::from_formula(format!("uf20-{v:02}"), generator::instance(20, v));
            job.options.check = true;
            job
        })
        .collect();

    let engine = Engine::new(EngineConfig::default());
    println!(
        "batch of {} jobs on {} worker(s)\n",
        jobs.len(),
        engine.workers()
    );

    let cold = engine.run(jobs.clone());
    println!("--- cold run (every job compiles) ---------------------");
    for result in &cold.results {
        let artifact = result.artifact.as_ref().expect("job succeeded");
        println!(
            "{:>9}  {}  pulses {:>4}  colors {:>2}  checker {}  [{}]",
            result.name,
            &result.key[..12],
            artifact.metrics.pulses,
            artifact.num_colors.unwrap_or(0),
            if artifact.check_passed == Some(true) {
                "PASS"
            } else {
                "FAIL"
            },
            result.cache.name(),
        );
    }
    println!(
        "cold: {:.2} jobs/s ({:.3} s wall)\n",
        cold.jobs_per_sec(),
        cold.wall_seconds
    );

    let warm = engine.run(jobs);
    println!("--- warm rerun (content-addressed cache hits) ----------");
    println!(
        "warm: {:.2} jobs/s ({:.4} s wall), {} of {} served from cache — {:.0}× the cold run",
        warm.jobs_per_sec(),
        warm.wall_seconds,
        warm.cache_hits(),
        warm.results.len(),
        warm.jobs_per_sec() / cold.jobs_per_sec()
    );

    // The JSONL stream `weaverc batch` and `crates/bench` consume.
    println!("\n--- batch summary record (JSONL) -----------------------");
    println!("{}", warm.batch_record());
}
