//! Retargeting Weaver to a *different* FPQA: sweep the hardware CCZ
//! fidelity (the Fig. 10c experiment) and watch the §5.4 profitability gate
//! switch the compiler between CCZ compression and CNOT ladders.
//!
//! ```text
//! cargo run --release --example custom_fpqa
//! ```

use weaver::core::compress;
use weaver::prelude::*;

fn main() {
    let formula = generator::instance(20, 1);
    println!(
        "sweeping CCZ fidelity on uf20-01 (f_cz = {:.3}, pulse-only threshold f_cz^4 = {:.4})\n",
        FpqaParams::default().fidelity_cz,
        compress::compression_threshold(FpqaParams::default().fidelity_cz),
    );
    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>12}",
        "f_ccz", "mode", "EPS", "pulses", "execute [s]"
    );

    for i in 0..=8 {
        let fidelity = 0.95 + i as f64 * 0.006;
        let params = FpqaParams::default().with_ccz_fidelity(fidelity.min(0.999));
        let compressed_mode = compress::compression_beneficial(&params, 30.0);
        let weaver = Weaver::new().with_fpqa_params(params);
        let out = weaver.compile_fpqa(&formula);
        println!(
            "{:>8.3} {:>12} {:>10.2e} {:>8} {:>12.4}",
            fidelity.min(0.999),
            if compressed_mode {
                "CCZ (2+2)"
            } else {
                "CZ ladder"
            },
            out.metrics.eps,
            out.metrics.pulses,
            out.metrics.execution_micros * 1e-6,
        );
    }

    // A hypothetical next-generation device: faster motion, tighter traps.
    println!("\nnext-generation device (2x movement speed, 4 µm traps):");
    let mut params = FpqaParams::default();
    params.movement_speed *= 2.0;
    params.min_trap_distance = 4.0;
    params.rydberg_radius = 5.0;
    params.fidelity_ccz = 0.995;
    let weaver = Weaver::new().with_fpqa_params(params);
    let out = weaver.compile_fpqa(&formula);
    let report = weaver.verify(&out, &formula);
    println!(
        "  EPS {:.2e}, execution {:.4} s, {} pulses, checker: {}",
        out.metrics.eps,
        out.metrics.execution_micros * 1e-6,
        out.metrics.pulses,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    assert!(report.passed());
}
