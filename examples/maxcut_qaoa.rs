//! The paper's Fig. 1 worked example: solve max-cut on a small graph with
//! QAOA, end to end — ingest the graph through the `maxcut` frontend,
//! compile for the FPQA, simulate the logical circuit, and read the cut
//! out of the measurement distribution.
//!
//! ```text
//! cargo run --release --example maxcut_qaoa
//! ```

use weaver::prelude::*;
use weaver::sat::qaoa;

fn main() {
    // The 6-vertex graph of Fig. 1: a–b, a–c, b–d, c–d, c–e, d–f, e–f —
    // written exactly as a `.mc` edge-list file (1-based vertices). The
    // frontend lowers each edge (u, v) to the two clauses (u ∨ v) and
    // (¬u ∨ ¬v): a cut edge satisfies both, an uncut edge exactly one, so
    // maximizing satisfied clauses maximizes the cut.
    let vertices = ["a", "b", "c", "d", "e", "f"];
    let edges = [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)];
    let graph = "p mc 6 7\n1 2\n1 3\n2 4\n3 4\n3 5\n4 6\n5 6\n";

    let frontend = FrontendRegistry::global()
        .get("maxcut")
        .expect("the maxcut frontend is registered");
    let workload = frontend.parse(graph).expect("a well-formed edge list");
    let Workload::MaxSat(formula) = &workload else {
        panic!("the maxcut frontend produces formulas");
    };

    // Scan a small (γ, β) grid, exactly simulating the QAOA circuit.
    let mut best = (QaoaParams::single(0.7, 0.3), f64::MIN);
    for gi in 1..10 {
        for bi in 1..10 {
            let params = QaoaParams::single(gi as f64 * 0.15, bi as f64 * 0.15);
            let circuit = qaoa::build_circuit(formula, &params, false);
            let expectation = qaoa::expected_satisfied(formula, &circuit);
            if expectation > best.1 {
                best = (params, expectation);
            }
        }
    }
    let (params, expectation) = best;
    println!(
        "best (γ, β) = ({:.2}, {:.2}) with E[satisfied] = {:.3} of {}",
        params.layers[0].0,
        params.layers[0].1,
        expectation,
        formula.num_clauses()
    );

    // Read the most likely bitstring from the output distribution (Fig. 1c).
    let circuit = qaoa::build_circuit(formula, &params, false);
    let state = circuit.statevector();
    let probabilities = state.probabilities();
    let (bitstring, p) = probabilities
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty distribution");
    let n = formula.num_vars();
    let side_of = |v: usize| (bitstring >> (n - 1 - v)) & 1;
    let cut: usize = edges
        .iter()
        .filter(|&&(u, v)| side_of(u) != side_of(v))
        .count();
    println!(
        "most likely outcome: {bitstring:06b} (p = {p:.4}) cutting {cut} of {} edges",
        edges.len()
    );
    let partition: Vec<&str> = vertices
        .iter()
        .enumerate()
        .filter(|&(v, _)| side_of(v) == 1)
        .map(|(_, name)| *name)
        .collect();
    println!(
        "partition (Fig. 1d): {{{}}} vs the rest",
        partition.join(", ")
    );

    // And the same workload through the actual Weaver FPQA pipeline, via
    // the workload-level entry point.
    let weaver = Weaver::new();
    let output = weaver
        .compile_workload("fpqa", &workload)
        .expect("the FPQA backend accepts any formula");
    let report = weaver
        .verify_workload(&output, &workload, None)
        .expect("the FPQA backend has a checker");
    println!(
        "\nFPQA compilation: {} pulses, {:.1} ms estimated execution, EPS {:.4}, checker: {}",
        output.metrics.pulses,
        output.metrics.execution_micros / 1000.0,
        output.metrics.eps,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    assert!(report.passed());
}
