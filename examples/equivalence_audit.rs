//! wChecker in action (paper §6, Fig. 9): verify a compiled program, then
//! inject faults — a perturbed Raman angle, a corrupted shuttle offset, a
//! dropped Rydberg annotation — and watch the checker catch each one.
//!
//! ```text
//! cargo run --release --example equivalence_audit
//! ```

use weaver::core::checker;
use weaver::prelude::*;
use weaver::sat::qaoa;
use weaver::wqasm::{Annotation, Statement};

fn main() {
    let formula = generator::instance(8, 1);
    let weaver = Weaver::new();
    let compiled = weaver.compile_fpqa(&formula);
    let reference = qaoa::build_circuit(&formula, &QaoaParams::default(), false);
    let params = FpqaParams::default();

    // 1. The pristine program passes, including the full unitary check.
    let report = checker::check(&compiled.compiled.program, &params, Some(&reference));
    println!(
        "pristine program : {} ({} pulses, {} motions checked, unitary={})",
        verdict(report.passed()),
        report.pulses_checked,
        report.motions_checked,
        report.unitary_checked
    );
    assert!(report.passed());

    // 2. Perturb one Raman angle: the pulse no longer implements its u3.
    let mut mutated = compiled.compiled.program.clone();
    'outer: for stmt in &mut mutated.statements {
        if let Statement::GateCall { annotations, .. } = stmt {
            for a in annotations {
                if let Annotation::RamanLocal { z, .. } = a {
                    *z += 0.31;
                    break 'outer;
                }
            }
        }
    }
    let report = checker::check(&mutated, &params, Some(&reference));
    println!(
        "raman angle +0.31: {} — {}",
        verdict(!report.passed()),
        first_error(&report)
    );
    assert!(!report.passed());

    // 3. Corrupt a shuttle offset: atoms land on the wrong traps, so a
    //    later transfer or Rydberg group check must fail.
    let mut mutated = compiled.compiled.program.clone();
    'outer2: for stmt in &mut mutated.statements {
        if let Statement::GateCall { annotations, .. } = stmt {
            for a in annotations {
                if let Annotation::Shuttle { offset, .. } = a {
                    *offset += 12.0;
                    break 'outer2;
                }
            }
        }
    }
    let report = checker::check(&mutated, &params, Some(&reference));
    println!(
        "shuttle +12 µm   : {} — {}",
        verdict(!report.passed()),
        first_error(&report)
    );
    assert!(!report.passed());

    // 4. Drop a @rydberg annotation: its logical gate loses its physical
    //    realization.
    let mut mutated = compiled.compiled.program.clone();
    for stmt in &mut mutated.statements {
        if let Statement::GateCall { annotations, .. } = stmt {
            let before = annotations.len();
            annotations.retain(|a| !matches!(a, Annotation::Rydberg));
            if annotations.len() != before {
                break;
            }
        }
    }
    let report = checker::check(&mutated, &params, Some(&reference));
    println!(
        "dropped @rydberg : {} — {}",
        verdict(!report.passed()),
        first_error(&report)
    );
    assert!(!report.passed());

    println!("\nall three injected faults were caught by the wChecker");
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "detected as expected"
    } else {
        "NOT DETECTED"
    }
}

fn first_error(report: &weaver::core::CheckReport) -> String {
    report
        .errors
        .first()
        .map(|e| e.to_string())
        .unwrap_or_else(|| "no error recorded".to_string())
}
