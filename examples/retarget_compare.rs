//! Retargeting one workload to every backend: the superconducting path
//! (SABRE onto IBM Washington) and four FPQA compilers (Weaver, Atomique,
//! Geyser, DPQA) — a miniature of the paper's evaluation tables.
//!
//! ```text
//! cargo run --release --example retarget_compare
//! ```

use weaver::prelude::*;

fn main() {
    let formula = generator::instance(20, 1);
    println!(
        "workload: uf20-01 ({} vars, {} clauses)\n",
        formula.num_vars(),
        formula.num_clauses()
    );
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "system", "compile [s]", "execute [s]", "EPS", "pulses", "motion"
    );

    let weaver = Weaver::new();

    // Superconducting path.
    let sc = weaver.compile_superconducting(&formula, &CouplingMap::ibm_washington());
    print_row("Superconducting", &sc.metrics);
    println!(
        "    (SABRE inserted {} SWAPs on the heavy-hex map)",
        sc.swap_count
    );

    // Weaver's FPQA path.
    let fpqa = weaver.compile_fpqa(&formula);
    print_row("Weaver", &fpqa.metrics);
    println!(
        "    ({} colors, wChecker: {})",
        fpqa.compiled.coloring.num_colors,
        if weaver.verify(&fpqa, &formula).passed() {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // The ideal simulator target, reached like any other registered
    // backend — by name through the registry-dispatched pipeline.
    match weaver.compile_target("simulator", &formula) {
        Ok(ideal) => {
            print_row("Simulator", &ideal.metrics);
            if let CompiledArtifact::Simulator(run) = &ideal.artifact {
                println!(
                    "    (ideal: {} of 2^{} basis states satisfy {} clauses)",
                    run.num_optimal,
                    formula.num_vars(),
                    run.max_satisfied
                );
            }
        }
        Err(e) => println!("{:<16} {}", "Simulator", e),
    }

    // Baselines.
    let params = FpqaParams::default();
    let baselines: Vec<Box<dyn FpqaCompiler>> = vec![
        Box::new(Atomique::new(params.clone())),
        Box::new(Geyser::new(params.clone())),
        Box::new(Dpqa::new(params.clone())),
    ];
    for compiler in &baselines {
        match compiler.compile(&formula) {
            Ok(out) => print_row(out.name, &out.metrics),
            Err(timeout) => println!("{:<16} {}", compiler.name(), timeout),
        }
    }

    // The paper's headline numbers for this workload size.
    let speedup = sc.metrics.compilation_seconds / fpqa.metrics.compilation_seconds;
    println!(
        "\nWeaver compiles {speedup:.1}x faster than the superconducting baseline \
         and reaches {:.1}x its EPS.",
        fpqa.metrics.eps / sc.metrics.eps.max(1e-300)
    );
}

fn print_row(name: &str, m: &Metrics) {
    println!(
        "{:<16} {:>12.4} {:>12.4} {:>10.2e} {:>8} {:>8}",
        name,
        m.compilation_seconds,
        m.execution_micros * 1e-6,
        m.eps,
        m.pulses,
        m.motion_ops
    );
}
