//! # Weaver — a retargetable compiler framework for FPQA quantum architectures
//!
//! Rust implementation of the CGO'25 paper *"Weaver: A Retargetable Compiler
//! Framework for FPQA Quantum Architectures"* (Kırmemiş, Romão, Giortamis,
//! Bhatotia). This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`circuit`] | `weaver-circuit` | circuit IR, gate library, native synthesis |
//! | [`simulator`] | `weaver-simulator` | state vectors, unitaries, equivalence |
//! | [`wqasm`] | `weaver-wqasm` | the wQasm language (OpenQASM + FPQA annotations) |
//! | [`sat`] | `weaver-sat` | Max-3SAT workloads and QAOA construction |
//! | [`fpqa`] | `weaver-fpqa` | neutral-atom device model, pulses, noise |
//! | [`superconducting`] | `weaver-superconducting` | coupling maps, SABRE transpiler |
//! | [`core`] | `weaver-core` | wOptimizer, wQasm codegen, wChecker, pipeline |
//! | [`engine`] | `weaver-engine` | parallel batch compilation + artifact cache |
//! | [`obs`] | `weaver-obs` | span tracing, metrics registry, structured logging |
//! | [`baselines`] | `weaver-baselines` | Geyser, Atomique, DPQA baselines |
//!
//! # Quickstart
//!
//! Compile a Max-3SAT benchmark for an FPQA, verify it, and compare with the
//! superconducting path:
//!
//! ```
//! use weaver::prelude::*;
//!
//! let formula = weaver::sat::generator::instance(20, 1); // ≈ SATLIB uf20-01
//! let compiler = Weaver::new();
//!
//! // FPQA path: wOptimizer + wQasm codegen.
//! let fpqa = compiler.compile_fpqa(&formula);
//! assert!(compiler.verify(&fpqa, &formula).passed());
//!
//! // Superconducting path: SABRE onto the 127-qubit IBM Washington model.
//! let sc = compiler.compile_superconducting(&formula, &CouplingMap::ibm_washington());
//!
//! // The paper's headline: higher fidelity on the FPQA path.
//! assert!(fpqa.metrics.eps > sc.metrics.eps);
//! ```

#![warn(missing_docs)]

pub use weaver_baselines as baselines;
pub use weaver_circuit as circuit;
pub use weaver_core as core;
pub use weaver_engine as engine;
pub use weaver_fpqa as fpqa;
pub use weaver_obs as obs;
pub use weaver_sat as sat;
pub use weaver_simulator as simulator;
pub use weaver_superconducting as superconducting;
pub use weaver_wqasm as wqasm;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use weaver_baselines::{Atomique, BaselineOutput, Dpqa, FpqaCompiler, Geyser, Timeout};
    pub use weaver_circuit::{Circuit, Gate, NativeBasis};
    pub use weaver_core::{
        Backend, BackendRegistry, CacheHandle, CheckReport, CodegenOptions, CompileOutput,
        CompiledArtifact, FpqaResult, Frontend, FrontendRegistry, Metrics, Weaver, Workload,
        WorkloadKind,
    };
    pub use weaver_engine::{CompileJob, Engine, EngineConfig};
    pub use weaver_fpqa::{FpqaDevice, FpqaParams, PulseOp, PulseSchedule};
    pub use weaver_sat::{generator, qaoa::QaoaParams, Formula};
    pub use weaver_superconducting::{CouplingMap, DeviceSpec, SuperconductingParams};
}
