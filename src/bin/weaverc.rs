//! `weaverc` — command-line front end for the Weaver retargetable compiler.
//!
//! ```text
//! weaverc <input> [--target fpqa|superconducting|simulator|sc:<device>]
//!         [--frontend dimacs|maxcut|wqasm] [--out file.qasm]
//!         [--no-compression] [--no-parallel-shuttling] [--greedy-coloring]
//!         [--ccz-fidelity F] [--gamma G --beta B] [--check] [--metrics]
//!
//! weaverc batch <dir|manifest> [--jobs N] [--target <name>]
//!         [--frontend <name>] [--check] [--jsonl file] [--out-dir dir]
//!         [--cache-dir dir] [--no-cache] [shared option flags as above]
//!
//! weaverc profile <dir|manifest> [batch flags]
//!
//! weaverc submit <file|dir|manifest> --server unix:<path>|tcp:<host:port>
//!         [--target <name>] [--frontend <name>] [--jsonl file] [--out file]
//!         [shared option flags]
//!
//! weaverc admin <ping|stats|shutdown> --server <addr>
//!
//! weaverc cache stats <dir>
//! weaverc cache compact <dir>
//!
//! weaverc targets
//! weaverc frontends
//!
//! global flags: [--trace file.json|file.jsonl] [--metrics file|-]
//! ```
//!
//! Single-shot mode reads one workload file in any registered frontend
//! format — DIMACS CNF / weighted WCNF Max-SAT, max-cut edge lists
//! (`.mc`), or direct wQasm circuits (`.wq`) — resolved through the
//! `weaver_core::FrontendRegistry` (`--frontend` first, then the file
//! extension, then content sniffing), compiles it for the chosen backend
//! (dispatched through the `weaver_core::backend::BackendRegistry`),
//! prints metrics, and optionally writes the compiled wQasm program and
//! runs the wChecker. `--target` accepts any registered name or alias —
//! including the `sc:*` superconducting device family (`sc:line`,
//! `sc:grid`, `sc:eagle`, `sc:heron`) and parameterized lattices like
//! `sc:grid:4x5`, minted on demand. Circuit workloads compile on
//! circuit-capable targets only (simulator, superconducting, `sc:*`).
//! Batch mode compiles a whole fixture directory or manifest through
//! `weaver-engine`: jobs run on a work-stealing pool, finished artifacts
//! land in a content-addressed cache, and results stream as JSONL (each
//! successful record carrying the per-pass timing trace). `weaverc
//! submit` is the client half of the `weaverd` compile daemon: workloads
//! are read and their frontends resolved locally, then shipped inline
//! over the framed JSON protocol to `--server` and the streamed results
//! are printed exactly like a local batch (a single workload file
//! behaves like single-shot mode, writing the compiled wQasm to `--out`
//! or stdout); `weaverc admin` sends one control verb — `ping`, `stats`
//! (queue, cache tiers, store introspection, and the daemon's full
//! Prometheus snapshot), or `shutdown` (graceful drain). `weaverc cache
//! stats` opens a batch cache directory's paged artifact store (running
//! crash recovery if the last writer died mid-operation), runs a full
//! checksum scan, and reports layout, counters, and a final
//! consistent/INCONSISTENT verdict; `weaverc cache compact` rewrites the
//! store without its free pages. `weaverc targets` lists the registered
//! backends; `weaverc frontends` the registered front ends. The global
//! `--trace` flag drains the span collector into a Chrome
//! `chrome://tracing` / Perfetto JSON file (flat JSONL with a `.jsonl`
//! extension) and `--metrics` dumps the Prometheus metric snapshot to a
//! file (`-` = stderr); `weaverc profile` runs a batch with tracing
//! forced on and prints a per-pass breakdown (calls, total vs self time,
//! p50/p99 read back from the pass-duration histograms) instead of the
//! JSONL stream. Failures exit nonzero with a one-line
//! structured `weaverc: error: <kind>: <message>` diagnostic instead of
//! panicking mid-batch; a bad `--target` value is `unknown-target`, an
//! unrecognizable input format `unknown-format`, and a circuit sent to a
//! formula-only target `unsupported-workload`.

use std::io::Write as _;
use std::process::ExitCode;
use weaver::core::backend::{BackendErrorKind, BackendRegistry, CompiledArtifact};
use weaver::core::{CodegenOptions, FrontendRegistry, Weaver, Workload};
use weaver::engine::{
    discover_jobs, job_record, CacheConfig, Engine, EngineConfig, JobOptions, Target,
};
use weaver::fpqa::FpqaParams;
use weaver::sat::qaoa::QaoaParams;

struct Args {
    input: String,
    target: String,
    frontend: Option<String>,
    out: Option<String>,
    compression: bool,
    parallel_shuttling: bool,
    dsatur: bool,
    ccz_fidelity: Option<f64>,
    gamma: f64,
    beta: f64,
    check: bool,
    // Observability surface (any mode): Chrome-trace / JSONL span export,
    // Prometheus metrics dump, and the `profile` per-pass breakdown.
    trace: Option<String>,
    metrics_out: Option<String>,
    profile: bool,
    // Batch-only surface.
    batch: bool,
    // `weaverc submit` / `weaverc admin` client surface for `weaverd`.
    submit: bool,
    server: Option<String>,
    admin_cmd: Option<String>,
    // `weaverc cache <stats|compact> <dir>` maintenance surface.
    cache_cmd: Option<(String, String)>,
    jobs: usize,
    jsonl: Option<String>,
    out_dir: Option<String>,
    cache_dir: Option<String>,
    use_cache: bool,
}

fn usage() -> &'static str {
    "usage: weaverc <input> [--target fpqa|superconducting|simulator|sc:<device>] [--out file.qasm]\n\
     \x20              [--frontend dimacs|maxcut|wqasm]\n\
     \x20              [--no-compression] [--no-parallel-shuttling] [--greedy-coloring]\n\
     \x20              [--ccz-fidelity F] [--gamma G] [--beta B] [--check]\n\
     \x20      weaverc batch <dir|manifest> [--jobs N] [--target <name>] [--frontend <name>]\n\
     \x20              [--check] [--jsonl file] [--out-dir dir] [--cache-dir dir]\n\
     \x20              [--no-cache] [shared option flags]\n\
     \x20      weaverc profile <dir|manifest> [batch flags]\n\
     \x20      weaverc submit <file|dir|manifest> --server unix:<path>|tcp:<host:port>\n\
     \x20              [--target <name>] [--frontend <name>] [--jsonl file] [--out file]\n\
     \x20              [shared option flags]\n\
     \x20      weaverc admin <ping|stats|shutdown> --server <addr>\n\
     \x20      weaverc cache stats <dir>\n\
     \x20      weaverc cache compact <dir>\n\
     \x20      weaverc targets\n\
     \x20      weaverc frontends\n\
     \x20      global: [--trace file.json|file.jsonl] [--metrics file|-]"
}

/// Prints the one-line structured diagnostic every failure path uses.
fn error_line(kind: &str, message: &str) -> ExitCode {
    eprintln!("weaverc: error: {kind}: {message}");
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        target: "fpqa".to_string(),
        frontend: None,
        out: None,
        compression: true,
        parallel_shuttling: true,
        dsatur: true,
        ccz_fidelity: None,
        gamma: 0.7,
        beta: 0.3,
        check: false,
        trace: None,
        metrics_out: None,
        profile: false,
        batch: false,
        submit: false,
        server: None,
        admin_cmd: None,
        cache_cmd: None,
        jobs: 0,
        jsonl: None,
        out_dir: None,
        cache_dir: None,
        use_cache: true,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("batch") {
        args.batch = true;
        it.next();
    }
    // `weaverc profile <dir|manifest>` is batch mode with tracing forced on
    // and a per-pass breakdown instead of the JSONL stream; it accepts
    // every batch flag.
    if !args.batch && it.peek().map(String::as_str) == Some("profile") {
        args.batch = true;
        args.profile = true;
        it.next();
    }
    // `weaverc submit <input> --server <addr>` — the weaverd client. It
    // shares the single-shot/batch option flags plus `--jsonl`/`--out`.
    if !args.batch && it.peek().map(String::as_str) == Some("submit") {
        args.submit = true;
        it.next();
    }
    // `weaverc admin <ping|stats|shutdown> --server <addr>` — daemon
    // control; parsed up front (it shares no flags with the compile
    // modes).
    if !args.batch && !args.submit && it.peek().map(String::as_str) == Some("admin") {
        it.next();
        let verb = match it.next() {
            Some(v) if v == "ping" || v == "stats" || v == "shutdown" => v,
            Some(v) => return Err(format!("unknown admin verb `{v}`\n{}", usage())),
            None => return Err(format!("missing admin verb\n{}", usage())),
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--server" => args.server = Some(it.next().ok_or("missing value for --server")?),
                "--help" | "-h" => return Err(usage().to_string()),
                other => return Err(format!("unknown argument `{other}`\n{}", usage())),
            }
        }
        if args.server.is_none() {
            return Err(format!("`weaverc admin` requires --server\n{}", usage()));
        }
        args.input = verb.clone();
        args.admin_cmd = Some(verb);
        return Ok(args);
    }
    // `weaverc cache <stats|compact> <dir>` — store maintenance; parsed
    // up front (it shares no flags with the compile modes).
    if !args.batch && !args.submit && it.peek().map(String::as_str) == Some("cache") {
        it.next();
        let action = match it.next() {
            Some(a) if a == "stats" || a == "compact" => a,
            Some(a) => return Err(format!("unknown cache action `{a}`\n{}", usage())),
            None => return Err(format!("missing cache action\n{}", usage())),
        };
        let dir = it
            .next()
            .ok_or_else(|| format!("missing cache directory\n{}", usage()))?;
        if let Some(extra) = it.next() {
            return Err(format!(
                "`weaverc cache {action}` takes one directory (got `{extra}`)\n{}",
                usage()
            ));
        }
        args.input = dir.clone();
        args.cache_cmd = Some((action, dir));
        return Ok(args);
    }
    // `weaverc batch targets` keeps treating `targets` as a path (same for
    // `frontends` and `submit`).
    if !args.batch && !args.submit {
        if let keyword @ ("targets" | "frontends") =
            it.peek().map(String::as_str).unwrap_or_default()
        {
            let keyword = keyword.to_string();
            it.next();
            if let Some(extra) = it.next() {
                return Err(format!(
                    "`weaverc {keyword}` takes no arguments (got `{extra}`)\n{}",
                    usage()
                ));
            }
            args.input = keyword;
            return Ok(args);
        }
    }
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("missing value for {flag}"))
    };
    let number = |v: String, flag: &str| -> Result<f64, String> {
        v.parse().map_err(|e| format!("bad {flag}: {e}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => args.target = value(&mut it, "--target")?,
            "--frontend" => args.frontend = Some(value(&mut it, "--frontend")?),
            // Single-shot only; batch writes artifacts via --out-dir.
            "--out" if !args.batch => args.out = Some(value(&mut it, "--out")?),
            "--no-compression" => args.compression = false,
            "--no-parallel-shuttling" => args.parallel_shuttling = false,
            "--greedy-coloring" => args.dsatur = false,
            "--ccz-fidelity" => {
                args.ccz_fidelity =
                    Some(number(value(&mut it, "--ccz-fidelity")?, "--ccz-fidelity")?)
            }
            "--gamma" => args.gamma = number(value(&mut it, "--gamma")?, "--gamma")?,
            "--beta" => args.beta = number(value(&mut it, "--beta")?, "--beta")?,
            "--check" => args.check = true,
            "--trace" => args.trace = Some(value(&mut it, "--trace")?),
            "--metrics" => args.metrics_out = Some(value(&mut it, "--metrics")?),
            "--jobs" if args.batch => {
                args.jobs = value(&mut it, "--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--server" if args.submit => args.server = Some(value(&mut it, "--server")?),
            "--jsonl" if args.batch || args.submit => args.jsonl = Some(value(&mut it, "--jsonl")?),
            "--out-dir" if args.batch => args.out_dir = Some(value(&mut it, "--out-dir")?),
            "--cache-dir" if args.batch => args.cache_dir = Some(value(&mut it, "--cache-dir")?),
            "--no-cache" if args.batch => args.use_cache = false,
            "--help" | "-h" => return Err(usage().to_string()),
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if args.input.is_empty() {
        return Err(usage().to_string());
    }
    if args.submit && args.server.is_none() {
        return Err(format!("`weaverc submit` requires --server\n{}", usage()));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Span collection must be live before the first compile; `profile`
    // implies it even without an export file.
    if args.trace.is_some() || args.profile {
        weaver::obs::span::set_enabled(true);
    }
    let code = if let Some((action, dir)) = &args.cache_cmd {
        run_cache(action, dir)
    } else if let Some(verb) = &args.admin_cmd {
        run_admin(verb, args.server.as_deref().unwrap_or_default())
    } else if args.submit {
        run_submit(&args)
    } else if args.input == "targets" && !args.batch {
        run_targets()
    } else if args.input == "frontends" && !args.batch {
        run_frontends()
    } else if args.batch {
        run_batch(&args)
    } else {
        run_single(&args)
    };
    finish_observability(&args, code)
}

/// Drains the span collector into `--trace` (profile mode drains it
/// itself) and dumps the Prometheus snapshot to `--metrics` (`-` =
/// stderr). Runs after every mode so both flags are global.
fn finish_observability(args: &Args, code: ExitCode) -> ExitCode {
    let mut code = code;
    if !args.profile {
        if let Some(path) = &args.trace {
            if let Err(msg) = write_trace(path, &weaver::obs::span::take()) {
                code = error_line("io", &msg);
            }
        }
    }
    if let Some(dest) = &args.metrics_out {
        let snapshot = weaver::obs::metrics::snapshot();
        if dest == "-" {
            eprint!("{snapshot}");
        } else if let Err(e) = std::fs::write(dest, snapshot) {
            code = error_line("io", &format!("cannot write {dest}: {e}"));
        }
    }
    code
}

/// Writes a drained trace to `path`: flat JSONL for a `.jsonl` extension,
/// Chrome `chrome://tracing` / Perfetto JSON otherwise.
fn write_trace(path: &str, trace: &weaver::obs::Trace) -> Result<(), String> {
    let body = if path.ends_with(".jsonl") {
        trace.to_jsonl()
    } else {
        trace.chrome_json()
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

/// `weaverc targets` — lists the backend registry (name, aliases,
/// description, capacity).
fn run_targets() -> ExitCode {
    let registry = BackendRegistry::global();
    println!("registered targets:");
    for backend in registry.backends() {
        let info = backend.info();
        let aliases = if info.aliases.is_empty() {
            String::new()
        } else {
            format!(" (alias {})", info.aliases.join(", "))
        };
        let capacity = match info.max_qubits {
            Some(n) => format!("up to {n} qubits"),
            None => "unbounded".to_string(),
        };
        println!(
            "  {:<16} {}{} — {} [passes: {}]",
            info.name,
            capacity,
            aliases,
            info.description,
            backend.passes().join(" → "),
        );
    }
    ExitCode::SUCCESS
}

/// `weaverc frontends` — lists the frontend registry (name, aliases,
/// extensions, description, produced workload kind).
fn run_frontends() -> ExitCode {
    let registry = FrontendRegistry::global();
    println!("registered front ends:");
    for front in registry.frontends() {
        let info = front.info();
        let aliases = if info.aliases.is_empty() {
            String::new()
        } else {
            format!(" (alias {})", info.aliases.join(", "))
        };
        let extensions: Vec<String> = info.extensions.iter().map(|e| format!(".{e}")).collect();
        println!(
            "  {:<16} {}{} — {} [produces: {}]",
            info.name,
            extensions.join(" "),
            aliases,
            info.description,
            info.produces,
        );
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Cache maintenance
// ---------------------------------------------------------------------------

/// `weaverc cache stats <dir>` / `weaverc cache compact <dir>` — opens the
/// paged artifact store in a batch cache directory (running crash recovery
/// if the previous writer died mid-operation) and either reports a full
/// consistency scan or compacts free pages away.
fn run_cache(action: &str, dir: &str) -> ExitCode {
    use weaver::engine::store::{Store, StoreTuning};
    let path = std::path::Path::new(dir);
    if !path.join(weaver::engine::store::STORE_FILE).exists() {
        return error_line("io", &format!("no artifact store in {dir}"));
    }
    let mut store = match Store::open(path, StoreTuning::default()) {
        Ok(s) => s,
        Err(e) if weaver::engine::store::is_locked(&e) => {
            return error_line(
                "busy",
                &format!("store in {dir} is held by another process"),
            );
        }
        Err(e) => return error_line("io", &format!("cannot open store in {dir}: {e}")),
    };
    let recovery = store.recovery();
    if recovery.recovered() {
        eprintln!(
            "weaverc: recovery on open — {} WAL record{} replayed, {} torn WAL byte{} discarded, \
             {} page{} quarantined, {} chain{} dropped{}",
            recovery.replayed,
            if recovery.replayed == 1 { "" } else { "s" },
            recovery.torn_wal_bytes,
            if recovery.torn_wal_bytes == 1 {
                ""
            } else {
                "s"
            },
            recovery.quarantined_pages,
            if recovery.quarantined_pages == 1 {
                ""
            } else {
                "s"
            },
            recovery.dropped_chains,
            if recovery.dropped_chains == 1 {
                ""
            } else {
                "s"
            },
            if recovery.header_rebuilt {
                ", header rebuilt"
            } else {
                ""
            },
        );
    }
    match action {
        "stats" => {
            let verify = match store.verify() {
                Ok(v) => v,
                Err(e) => return error_line("io", &format!("verification scan failed: {e}")),
            };
            let stats = store.stats();
            println!(
                "store: {}",
                path.join(weaver::engine::store::STORE_FILE).display()
            );
            println!("  page size:       {} B", stats.page_size);
            println!(
                "  pages:           {} ({} live, {} free)",
                stats.page_count, stats.live_pages, stats.free_pages
            );
            println!("  artifacts:       {}", stats.artifacts);
            println!("  file bytes:      {}", stats.file_bytes);
            println!("  wal bytes:       {}", stats.wal_bytes);
            println!("  checksum fails:  {}", stats.checksum_failures);
            println!("  wal replayed:    {}", stats.wal_replayed);
            println!("  recoveries:      {}", stats.recoveries);
            // Same numbers again in Prometheus exposition format, for
            // scraping / diffing against a live process.
            store.publish_metrics();
            println!();
            print!("{}", weaver::obs::metrics::snapshot());
            if verify.consistent() {
                println!(
                    "verify: consistent ({} artifacts checked)",
                    verify.artifacts_ok
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "verify: INCONSISTENT ({} ok, {} quarantined)",
                    verify.artifacts_ok, verify.artifacts_failed
                );
                ExitCode::FAILURE
            }
        }
        "compact" => match store.compact() {
            Ok(report) => {
                println!(
                    "compacted: {} -> {} bytes, {} artifact{} kept, {} dropped",
                    report.bytes_before,
                    report.bytes_after,
                    report.artifacts,
                    if report.artifacts == 1 { "" } else { "s" },
                    report.dropped,
                );
                ExitCode::SUCCESS
            }
            Err(e) => error_line("io", &format!("compaction failed: {e}")),
        },
        _ => unreachable!("parse_args validated the action"),
    }
}

// ---------------------------------------------------------------------------
// weaverd client: submit + admin
// ---------------------------------------------------------------------------

/// `weaverc submit <file|dir|manifest> --server <addr>` — ships compile
/// jobs to a running `weaverd` over the framed JSON protocol and streams
/// the results back. Workload text is read and its frontend resolved
/// locally (path and extension context does not survive the wire), so the
/// daemon sees fully-specified inline jobs.
fn run_submit(args: &Args) -> ExitCode {
    use weaver::engine::jsonl::JsonValue;
    use weaver::engine::server::{read_frame, write_frame, ClientStream, ListenAddr};
    use weaver::engine::{CompileJob, JobSource};

    let server = args.server.as_deref().unwrap_or_default();
    let addr = match ListenAddr::parse(server) {
        Ok(a) => a,
        Err(e) => return error_line("io", &format!("bad --server `{server}`: {e}")),
    };
    let target = match Target::parse(&args.target) {
        Ok(t) => t,
        Err(e) => return error_line("unknown-target", &e),
    };
    let defaults = JobOptions {
        compression: args.compression,
        parallel_shuttling: args.parallel_shuttling,
        dsatur: args.dsatur,
        ccz_fidelity: args.ccz_fidelity,
        gamma: args.gamma,
        beta: args.beta,
        check: args.check,
    };
    let registry = FrontendRegistry::global();
    if let Some(name) = &args.frontend {
        if registry.get(name).is_none() {
            return error_line("unknown-format", &registry.unknown_format(name));
        }
    }

    // A file whose extension any frontend claims (or with `--frontend`
    // pinned) is one workload, compiled like single-shot mode; everything
    // else goes through the same dir/manifest discovery as `weaverc
    // batch`.
    let path = std::path::Path::new(&args.input);
    let claimed_extension = path
        .extension()
        .and_then(|x| x.to_str())
        .map(|x| x.to_ascii_lowercase())
        .is_some_and(|x| {
            registry
                .frontends()
                .any(|f| f.info().extensions.contains(&x))
        });
    let single = path.is_file() && (args.frontend.is_some() || claimed_extension);
    let jobs: Vec<CompileJob> = if single {
        vec![CompileJob {
            source: JobSource::Path(path.to_path_buf()),
            frontend: args.frontend.clone(),
            target,
            options: defaults,
        }]
    } else {
        let mut jobs = match discover_jobs(path, target, &defaults) {
            Ok(jobs) => jobs,
            Err(e) => return error_line("io", &e),
        };
        if let Some(name) = &args.frontend {
            for job in jobs.iter_mut().filter(|j| j.frontend.is_none()) {
                job.frontend = Some(name.clone());
            }
        }
        jobs
    };

    let mut requests = Vec::new();
    for (id, job) in jobs.iter().enumerate() {
        let JobSource::Path(p) = &job.source else {
            return error_line("io", "discovery produced a non-path job");
        };
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => return error_line("io", &format!("cannot read {}: {e}", p.display())),
        };
        let frontend = match registry.resolve(job.frontend.as_deref(), Some(p), &text) {
            Ok(front) => front.info().name,
            Err(e) => return error_line("unknown-format", &e),
        };
        let mut request = weaver::engine::jsonl::JsonObject::new()
            .str("verb", "compile")
            .u64("id", id as u64)
            .str("name", &p.display().to_string())
            .str("text", &text)
            .str("frontend", &frontend)
            .str("target", job.target.name())
            .bool("check", job.options.check)
            .bool("compression", job.options.compression)
            .bool("parallel-shuttling", job.options.parallel_shuttling)
            .bool("dsatur", job.options.dsatur)
            .f64("gamma", job.options.gamma)
            .f64("beta", job.options.beta)
            .bool("emit", single);
        if let Some(f) = job.options.ccz_fidelity {
            request = request.f64("ccz-fidelity", f);
        }
        requests.push(request.finish());
    }

    let mut stream = match ClientStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => return error_line("io", &format!("cannot connect to {addr}: {e}")),
    };
    // Pipeline every request before reading: the daemon streams job
    // records back in completion order, tagged with our ids.
    for request in &requests {
        if let Err(e) = write_frame(&mut stream, request.as_bytes()) {
            return error_line("io", &format!("cannot send to {addr}: {e}"));
        }
    }

    let sink_file = match &args.jsonl {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(std::sync::Mutex::new(f)),
            Err(e) => return error_line("io", &format!("cannot create {path}: {e}")),
        },
        None => None,
    };
    let mut failed = 0usize;
    let mut single_artifact: Option<String> = None;
    for _ in 0..requests.len() {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                return error_line("io", &format!("{addr} closed before all results arrived"))
            }
            Err(e) => return error_line("io", &format!("cannot receive from {addr}: {e}")),
        };
        let line = String::from_utf8_lossy(&frame).into_owned();
        let record = match JsonValue::parse(&line) {
            Ok(v) => v,
            Err(e) => return error_line("io", &format!("bad record from {addr}: {e}")),
        };
        match record.str_field("kind") {
            Some("job") => {
                if record.str_field("status") != Some("ok") {
                    failed += 1;
                    let kind = record.str_field("error_kind").unwrap_or("check");
                    let what = record
                        .str_field("error")
                        .unwrap_or("wChecker FAIL")
                        .to_string();
                    let name = record.str_field("name").unwrap_or("?");
                    eprintln!("weaverc: error: {kind}: {what} ({name})");
                } else if single {
                    single_artifact = record.str_field("wqasm").map(str::to_string);
                }
            }
            Some("busy") => {
                failed += 1;
                eprintln!(
                    "weaverc: error: server-busy: queue at bound {} — resubmit later",
                    record
                        .get("limit")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or_default()
                );
            }
            _ => {
                failed += 1;
                let kind = record.str_field("error_kind").unwrap_or("io");
                let what = record.str_field("error").unwrap_or("unexpected record");
                eprintln!("weaverc: error: {kind}: {what}");
            }
        }
        // The JSONL stream mirrors local batch mode; single-file mode
        // reserves stdout for the compiled wQasm instead.
        match &sink_file {
            Some(file) => {
                let _ = writeln!(file.lock().unwrap(), "{line}");
            }
            None if single => {}
            None => println!("{line}"),
        }
    }

    if single {
        return match single_artifact {
            Some(qasm) if failed == 0 => write_output(&args.out, &qasm),
            _ => ExitCode::FAILURE,
        };
    }
    eprintln!(
        "weaverc: submit done — {}/{} succeeded on {addr}",
        requests.len() - failed,
        requests.len(),
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `weaverc admin <ping|stats|shutdown> --server <addr>` — one control
/// verb against a running `weaverd`. `stats` prints a short summary plus
/// the daemon's full Prometheus snapshot; the other verbs echo the raw
/// response record.
fn run_admin(verb: &str, server: &str) -> ExitCode {
    use weaver::engine::jsonl::{JsonObject, JsonValue};
    use weaver::engine::server::{read_frame, write_frame, ClientStream, ListenAddr};

    let addr = match ListenAddr::parse(server) {
        Ok(a) => a,
        Err(e) => return error_line("io", &format!("bad --server `{server}`: {e}")),
    };
    let mut stream = match ClientStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => return error_line("io", &format!("cannot connect to {addr}: {e}")),
    };
    let request = JsonObject::new().str("verb", verb).u64("id", 0).finish();
    if let Err(e) = write_frame(&mut stream, request.as_bytes()) {
        return error_line("io", &format!("cannot send to {addr}: {e}"));
    }
    let frame = match read_frame(&mut stream) {
        Ok(Some(frame)) => frame,
        Ok(None) => return error_line("io", &format!("{addr} closed without answering")),
        Err(e) => return error_line("io", &format!("cannot receive from {addr}: {e}")),
    };
    let line = String::from_utf8_lossy(&frame).into_owned();
    if verb != "stats" {
        println!("{line}");
        return ExitCode::SUCCESS;
    }
    let record = match JsonValue::parse(&line) {
        Ok(v) => v,
        Err(e) => return error_line("io", &format!("bad record from {addr}: {e}")),
    };
    let count = |v: Option<&JsonValue>, key: &str| {
        v.and_then(|v| v.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or_default()
    };
    let top = Some(&record);
    println!(
        "queue:  {} queued (bound {}), {} workers{}",
        count(top, "queue_depth"),
        count(top, "queue_bound"),
        count(top, "workers"),
        if record.get("draining").and_then(JsonValue::as_bool) == Some(true) {
            ", draining"
        } else {
            ""
        },
    );
    let cache = record.get("cache");
    println!(
        "cache:  {} memory hits, {} disk hits, {} misses, {} evictions",
        count(cache, "memory_hits"),
        count(cache, "disk_hits"),
        count(cache, "misses"),
        count(cache, "evictions"),
    );
    let store = record.get("store");
    if store.is_some_and(|s| s.get("artifacts").is_some()) {
        println!(
            "store:  {} artifacts on {} live pages ({} free), {} wal fsyncs ({} group commits)",
            count(store, "artifacts"),
            count(store, "live_pages"),
            count(store, "free_pages"),
            count(store, "wal_fsyncs"),
            count(store, "group_commits"),
        );
    }
    println!();
    if let Some(snapshot) = record.str_field("metrics") {
        print!("{snapshot}");
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------------

fn run_batch(args: &Args) -> ExitCode {
    let target = match Target::parse(&args.target) {
        Ok(t) => t,
        Err(e) => return error_line("unknown-target", &e),
    };
    let defaults = JobOptions {
        compression: args.compression,
        parallel_shuttling: args.parallel_shuttling,
        dsatur: args.dsatur,
        ccz_fidelity: args.ccz_fidelity,
        gamma: args.gamma,
        beta: args.beta,
        check: args.check,
    };
    if let Some(name) = &args.frontend {
        if FrontendRegistry::global().get(name).is_none() {
            return error_line(
                "unknown-format",
                &FrontendRegistry::global().unknown_format(name),
            );
        }
    }
    let mut jobs = match discover_jobs(std::path::Path::new(&args.input), target, &defaults) {
        Ok(jobs) => jobs,
        Err(e) => return error_line("io", &e),
    };
    // `--frontend` seeds jobs that did not pin one via a manifest line.
    if let Some(name) = &args.frontend {
        for job in jobs.iter_mut().filter(|j| j.frontend.is_none()) {
            job.frontend = Some(name.clone());
        }
    }
    let engine = match Engine::try_new(EngineConfig {
        jobs: args.jobs,
        cache: CacheConfig {
            disk_dir: args.cache_dir.as_ref().map(Into::into),
            ..CacheConfig::default()
        },
        use_cache: args.use_cache,
    }) {
        Ok(engine) => engine,
        Err(e) => return error_line("io", &format!("cannot open cache dir: {e}")),
    };
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return error_line("io", &format!("cannot create {dir}: {e}"));
        }
    }

    let n = jobs.len();
    eprintln!(
        "weaverc: batch of {n} job{} on {} worker{} (cache: {})",
        if n == 1 { "" } else { "s" },
        engine.workers(),
        if engine.workers() == 1 { "" } else { "s" },
        if !args.use_cache {
            "off".to_string()
        } else if let Some(dir) = &args.cache_dir {
            format!("memory + disk at {dir}")
        } else {
            "memory".to_string()
        },
    );

    // Stream one JSONL record per finished job (stdout or --jsonl file).
    let sink_file = match &args.jsonl {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(std::sync::Mutex::new(f)),
            Err(e) => return error_line("io", &format!("cannot create {path}: {e}")),
        },
        None => None,
    };
    let stdout = std::sync::Mutex::new(std::io::stdout());
    let emit_record = |line: &str| match &sink_file {
        Some(file) => {
            let _ = writeln!(file.lock().unwrap(), "{line}");
        }
        // Profile mode prints a table instead of a JSONL stream; records
        // still land in --jsonl when asked for.
        None if args.profile => {}
        None => {
            let _ = writeln!(stdout.lock().unwrap(), "{line}");
        }
    };
    let report = engine.run_streaming(jobs, &|result| emit_record(&job_record(result)));
    emit_record(&report.batch_record());

    if args.profile {
        let trace = weaver::obs::span::take();
        print_profile(&trace);
        if let Some(path) = &args.trace {
            if let Err(msg) = write_trace(path, &trace) {
                return error_line("io", &msg);
            }
        }
    }

    // Optionally materialize artifacts next to their job names. Stems can
    // collide (same file name in two directories, or one file listed twice
    // in a manifest under different options) — disambiguate with the job
    // index rather than silently overwriting.
    if let Some(dir) = &args.out_dir {
        let mut used = std::collections::HashSet::new();
        for result in &report.results {
            if let Ok(artifact) = &result.artifact {
                let stem = std::path::Path::new(&result.name)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| format!("job-{}", result.index));
                let name = if used.insert(stem.clone()) {
                    format!("{stem}.qasm")
                } else {
                    format!("{stem}-{}.qasm", result.index)
                };
                let path = std::path::Path::new(dir).join(name);
                if let Err(e) = std::fs::write(&path, &artifact.wqasm) {
                    return error_line("io", &format!("cannot write {}: {e}", path.display()));
                }
            }
        }
    }

    eprintln!(
        "weaverc: batch done — {}/{} succeeded, {} cache hit{}, {:.2} jobs/s ({:.3} s)",
        report.succeeded(),
        report.results.len(),
        report.cache_hits(),
        if report.cache_hits() == 1 { "" } else { "s" },
        report.jobs_per_sec(),
        report.wall_seconds,
    );
    for result in report.results.iter().filter(|r| !r.succeeded()) {
        match &result.artifact {
            Err(e) => eprintln!(
                "weaverc: error: {}: {} ({})",
                e.kind.name(),
                e.message,
                result.name
            ),
            Ok(a) => eprintln!(
                "weaverc: error: check: wChecker FAIL with {} finding{} ({})",
                a.check_errors.len(),
                if a.check_errors.len() == 1 { "" } else { "s" },
                result.name
            ),
        }
    }
    if report.failed() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `weaverc profile` — aggregates the drained trace into a per-pass table:
/// call count, total wall time, self time (total minus nested child
/// spans), and p50/p99 latencies read back from the process-global
/// `weaver_pass_duration_seconds` histograms.
fn print_profile(trace: &weaver::obs::Trace) {
    use std::collections::{BTreeMap, HashMap};

    // Sum of direct-child durations per span, for self-time.
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for s in &trace.spans {
        if s.parent != 0 {
            *child_us.entry(s.parent).or_default() += s.dur_us;
        }
    }
    #[derive(Default)]
    struct Row {
        calls: u64,
        total_us: u64,
        self_us: u64,
    }
    let mut rows: BTreeMap<&str, Row> = BTreeMap::new();
    for s in trace.spans.iter().filter(|s| s.cat == "pass") {
        let row = rows.entry(s.name.as_str()).or_default();
        row.calls += 1;
        row.total_us += s.dur_us;
        row.self_us += s
            .dur_us
            .saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
    }
    if rows.is_empty() {
        println!("profile: no pass spans recorded (every job served from cache?)");
        return;
    }
    let mut rows: Vec<(&str, Row)> = rows.into_iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_us));

    let quantile_ms = |name: &str, q: f64| -> String {
        weaver::obs::metrics::histogram_with(
            "weaver_pass_duration_seconds",
            "Wall-clock duration of individual compiler passes.",
            &[("pass", name)],
            &weaver::obs::metrics::DEFAULT_LATENCY_BUCKETS,
        )
        .quantile(q)
        .map_or_else(|| "-".to_string(), |v| format!("{:.3}", v * 1e3))
    };
    println!(
        "{:<26} {:>7} {:>11} {:>11} {:>11} {:>11}",
        "pass", "calls", "total s", "self s", "p50 ms", "p99 ms"
    );
    for (name, row) in rows {
        println!(
            "{:<26} {:>7} {:>11.6} {:>11.6} {:>11} {:>11}",
            name,
            row.calls,
            row.total_us as f64 * 1e-6,
            row.self_us as f64 * 1e-6,
            quantile_ms(name, 0.50),
            quantile_ms(name, 0.99),
        );
    }
}

// ---------------------------------------------------------------------------
// Single-shot mode
// ---------------------------------------------------------------------------

fn run_single(args: &Args) -> ExitCode {
    let text = match std::fs::read_to_string(&args.input) {
        Ok(t) => t,
        Err(e) => return error_line("io", &format!("cannot read {}: {e}", args.input)),
    };
    let registry = FrontendRegistry::global();
    let front = match registry.resolve(
        args.frontend.as_deref(),
        Some(std::path::Path::new(&args.input)),
        &text,
    ) {
        Ok(front) => front,
        Err(e) => return error_line("unknown-format", &e),
    };
    let workload = match front.parse(&text) {
        Ok(w) => w,
        Err(e) => return error_line("parse", &format!("{}: {e}", args.input)),
    };
    eprintln!(
        "weaverc: {} — {} [{}]",
        args.input,
        workload.describe(),
        front.info().name
    );

    let mut params = FpqaParams::default();
    if let Some(f) = args.ccz_fidelity {
        params = params.with_ccz_fidelity(f);
    }
    let options = CodegenOptions {
        compression: args.compression,
        parallel_shuttling: args.parallel_shuttling,
        dsatur: args.dsatur,
        qaoa: QaoaParams::single(args.gamma, args.beta),
        measure: true,
        ..CodegenOptions::default()
    };
    let weaver = Weaver::new().with_fpqa_params(params).with_options(options);

    // One dispatch site: the backend registry resolves the target name (or
    // alias) and compiles; per-target reporting reads the artifact variant.
    let output = match weaver.compile_workload(&args.target, &workload) {
        Ok(output) => output,
        Err(e) if e.kind == BackendErrorKind::UnknownTarget => {
            return error_line("unknown-target", &e.message)
        }
        Err(e) if e.kind == BackendErrorKind::UnsupportedWorkload => {
            return error_line("unsupported-workload", &e.message)
        }
        Err(e) => return error_line("compile", &e.message),
    };
    match &output.artifact {
        CompiledArtifact::Fpqa(compiled) => {
            eprintln!(
                "weaverc: compiled in {:.4} s — {} pulses, {} motion ops, {} colors",
                output.metrics.compilation_seconds,
                output.metrics.pulses,
                output.metrics.motion_ops,
                compiled.coloring.num_colors,
            );
            eprintln!(
                "weaverc: estimated execution {:.4} s, EPS {:.3e}",
                output.metrics.execution_micros * 1e-6,
                output.metrics.eps
            );
        }
        CompiledArtifact::Superconducting { swap_count, .. } => {
            eprintln!(
                "weaverc: compiled in {:.4} s — {} gates, {} SWAPs inserted",
                output.metrics.compilation_seconds, output.metrics.pulses, swap_count
            );
            eprintln!(
                "weaverc: estimated execution {:.4} s, EPS {:.3e}",
                output.metrics.execution_micros * 1e-6,
                output.metrics.eps
            );
        }
        CompiledArtifact::Simulator(run) => {
            eprintln!(
                "weaverc: compiled in {:.4} s — {} native gates, ideal state-vector run",
                output.metrics.compilation_seconds, output.metrics.pulses,
            );
            match &workload {
                Workload::MaxSat(formula) => eprintln!(
                    "weaverc: ideal EPS {:.3e} ({} of 2^{} basis states reach optimum {})",
                    run.optimal_probability,
                    run.num_optimal,
                    formula.num_vars(),
                    run.max_satisfied,
                ),
                Workload::Circuit(_) => eprintln!(
                    "weaverc: peak basis-state probability {:.3e} ({} peak state{})",
                    run.optimal_probability,
                    run.num_optimal,
                    if run.num_optimal == 1 { "" } else { "s" },
                ),
            }
        }
    }
    if args.check {
        match weaver.verify_workload(&output, &workload, None) {
            Some(report) if report.passed() => {
                eprintln!(
                    "weaverc: wChecker PASS ({} pulses, {} motions checked)",
                    report.pulses_checked, report.motions_checked
                );
            }
            Some(report) => {
                for e in &report.errors {
                    eprintln!("weaverc:   {e}");
                }
                return error_line(
                    "check",
                    &format!(
                        "wChecker FAIL with {} finding{} ({})",
                        report.errors.len(),
                        if report.errors.len() == 1 { "" } else { "s" },
                        args.input
                    ),
                );
            }
            None => eprintln!(
                "weaverc: no checker for target `{}` — skipping --check",
                args.target
            ),
        }
    }
    let qasm = output.artifact.print_wqasm();
    write_output(&args.out, &qasm)
}

fn write_output(out: &Option<String>, qasm: &str) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, qasm) {
                return error_line("io", &format!("cannot write {path}: {e}"));
            }
            eprintln!("weaverc: wrote {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{qasm}");
            ExitCode::SUCCESS
        }
    }
}
