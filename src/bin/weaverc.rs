//! `weaverc` — command-line front end for the Weaver retargetable compiler.
//!
//! ```text
//! weaverc <input.cnf> [--target fpqa|superconducting] [--out file.qasm]
//!         [--no-compression] [--no-parallel-shuttling] [--greedy-coloring]
//!         [--ccz-fidelity F] [--gamma G --beta B] [--check] [--metrics]
//!
//! weaverc batch <dir|manifest> [--jobs N] [--target fpqa|superconducting]
//!         [--check] [--jsonl file] [--out-dir dir] [--cache-dir dir]
//!         [--no-cache] [shared option flags as above]
//! ```
//!
//! Single-shot mode reads one DIMACS CNF Max-3SAT instance (SATLIB format),
//! compiles it for the chosen backend, prints metrics, and optionally
//! writes the compiled wQasm program and runs the wChecker. Batch mode
//! compiles a whole fixture directory or manifest through `weaver-engine`:
//! jobs run on a work-stealing pool, finished artifacts land in a
//! content-addressed cache, and results stream as JSONL. Failures exit
//! nonzero with a one-line structured `weaverc: error: <kind>: <message>`
//! diagnostic instead of panicking mid-batch.

use std::io::Write as _;
use std::process::ExitCode;
use weaver::core::{CodegenOptions, Weaver};
use weaver::engine::{
    discover_jobs, job_record, CacheConfig, Engine, EngineConfig, JobOptions, Target,
};
use weaver::fpqa::FpqaParams;
use weaver::sat::{dimacs, qaoa::QaoaParams};
use weaver::superconducting::CouplingMap;

struct Args {
    input: String,
    target: String,
    out: Option<String>,
    compression: bool,
    parallel_shuttling: bool,
    dsatur: bool,
    ccz_fidelity: Option<f64>,
    gamma: f64,
    beta: f64,
    check: bool,
    // Batch-only surface.
    batch: bool,
    jobs: usize,
    jsonl: Option<String>,
    out_dir: Option<String>,
    cache_dir: Option<String>,
    use_cache: bool,
}

fn usage() -> &'static str {
    "usage: weaverc <input.cnf> [--target fpqa|superconducting] [--out file.qasm]\n\
     \x20              [--no-compression] [--no-parallel-shuttling] [--greedy-coloring]\n\
     \x20              [--ccz-fidelity F] [--gamma G] [--beta B] [--check]\n\
     \x20      weaverc batch <dir|manifest> [--jobs N] [--target fpqa|superconducting]\n\
     \x20              [--check] [--jsonl file] [--out-dir dir] [--cache-dir dir]\n\
     \x20              [--no-cache] [shared option flags]"
}

/// Prints the one-line structured diagnostic every failure path uses.
fn error_line(kind: &str, message: &str) -> ExitCode {
    eprintln!("weaverc: error: {kind}: {message}");
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        target: "fpqa".to_string(),
        out: None,
        compression: true,
        parallel_shuttling: true,
        dsatur: true,
        ccz_fidelity: None,
        gamma: 0.7,
        beta: 0.3,
        check: false,
        batch: false,
        jobs: 0,
        jsonl: None,
        out_dir: None,
        cache_dir: None,
        use_cache: true,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("batch") {
        args.batch = true;
        it.next();
    }
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("missing value for {flag}"))
    };
    let number = |v: String, flag: &str| -> Result<f64, String> {
        v.parse().map_err(|e| format!("bad {flag}: {e}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => args.target = value(&mut it, "--target")?,
            // Single-shot only; batch writes artifacts via --out-dir.
            "--out" if !args.batch => args.out = Some(value(&mut it, "--out")?),
            "--no-compression" => args.compression = false,
            "--no-parallel-shuttling" => args.parallel_shuttling = false,
            "--greedy-coloring" => args.dsatur = false,
            "--ccz-fidelity" => {
                args.ccz_fidelity =
                    Some(number(value(&mut it, "--ccz-fidelity")?, "--ccz-fidelity")?)
            }
            "--gamma" => args.gamma = number(value(&mut it, "--gamma")?, "--gamma")?,
            "--beta" => args.beta = number(value(&mut it, "--beta")?, "--beta")?,
            "--check" => args.check = true,
            "--jobs" if args.batch => {
                args.jobs = value(&mut it, "--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--jsonl" if args.batch => args.jsonl = Some(value(&mut it, "--jsonl")?),
            "--out-dir" if args.batch => args.out_dir = Some(value(&mut it, "--out-dir")?),
            "--cache-dir" if args.batch => args.cache_dir = Some(value(&mut it, "--cache-dir")?),
            "--no-cache" if args.batch => args.use_cache = false,
            "--help" | "-h" => return Err(usage().to_string()),
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if args.input.is_empty() {
        return Err(usage().to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.batch {
        run_batch(&args)
    } else {
        run_single(&args)
    }
}

// ---------------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------------

fn run_batch(args: &Args) -> ExitCode {
    let target = match Target::parse(&args.target) {
        Ok(t) => t,
        Err(e) => return error_line("usage", &e),
    };
    let defaults = JobOptions {
        compression: args.compression,
        parallel_shuttling: args.parallel_shuttling,
        dsatur: args.dsatur,
        ccz_fidelity: args.ccz_fidelity,
        gamma: args.gamma,
        beta: args.beta,
        check: args.check,
    };
    let jobs = match discover_jobs(std::path::Path::new(&args.input), target, &defaults) {
        Ok(jobs) => jobs,
        Err(e) => return error_line("io", &e),
    };
    let engine = match Engine::try_new(EngineConfig {
        jobs: args.jobs,
        cache: CacheConfig {
            disk_dir: args.cache_dir.as_ref().map(Into::into),
            ..CacheConfig::default()
        },
        use_cache: args.use_cache,
    }) {
        Ok(engine) => engine,
        Err(e) => return error_line("io", &format!("cannot open cache dir: {e}")),
    };
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return error_line("io", &format!("cannot create {dir}: {e}"));
        }
    }

    let n = jobs.len();
    eprintln!(
        "weaverc: batch of {n} job{} on {} worker{} (cache: {})",
        if n == 1 { "" } else { "s" },
        engine.workers(),
        if engine.workers() == 1 { "" } else { "s" },
        if !args.use_cache {
            "off".to_string()
        } else if let Some(dir) = &args.cache_dir {
            format!("memory + disk at {dir}")
        } else {
            "memory".to_string()
        },
    );

    // Stream one JSONL record per finished job (stdout or --jsonl file).
    let sink_file = match &args.jsonl {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(std::sync::Mutex::new(f)),
            Err(e) => return error_line("io", &format!("cannot create {path}: {e}")),
        },
        None => None,
    };
    let stdout = std::sync::Mutex::new(std::io::stdout());
    let report = engine.run_streaming(jobs, &|result| {
        let line = job_record(result);
        match &sink_file {
            Some(file) => {
                let _ = writeln!(file.lock().unwrap(), "{line}");
            }
            None => {
                let _ = writeln!(stdout.lock().unwrap(), "{line}");
            }
        }
    });
    match &sink_file {
        Some(file) => {
            let _ = writeln!(file.lock().unwrap(), "{}", report.batch_record());
        }
        None => {
            let _ = writeln!(stdout.lock().unwrap(), "{}", report.batch_record());
        }
    }

    // Optionally materialize artifacts next to their job names. Stems can
    // collide (same file name in two directories, or one file listed twice
    // in a manifest under different options) — disambiguate with the job
    // index rather than silently overwriting.
    if let Some(dir) = &args.out_dir {
        let mut used = std::collections::HashSet::new();
        for result in &report.results {
            if let Ok(artifact) = &result.artifact {
                let stem = std::path::Path::new(&result.name)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| format!("job-{}", result.index));
                let name = if used.insert(stem.clone()) {
                    format!("{stem}.qasm")
                } else {
                    format!("{stem}-{}.qasm", result.index)
                };
                let path = std::path::Path::new(dir).join(name);
                if let Err(e) = std::fs::write(&path, &artifact.wqasm) {
                    return error_line("io", &format!("cannot write {}: {e}", path.display()));
                }
            }
        }
    }

    eprintln!(
        "weaverc: batch done — {}/{} succeeded, {} cache hit{}, {:.2} jobs/s ({:.3} s)",
        report.succeeded(),
        report.results.len(),
        report.cache_hits(),
        if report.cache_hits() == 1 { "" } else { "s" },
        report.jobs_per_sec(),
        report.wall_seconds,
    );
    for result in report.results.iter().filter(|r| !r.succeeded()) {
        match &result.artifact {
            Err(e) => eprintln!(
                "weaverc: error: {}: {} ({})",
                e.kind.name(),
                e.message,
                result.name
            ),
            Ok(a) => eprintln!(
                "weaverc: error: check: wChecker FAIL with {} finding{} ({})",
                a.check_errors.len(),
                if a.check_errors.len() == 1 { "" } else { "s" },
                result.name
            ),
        }
    }
    if report.failed() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Single-shot mode
// ---------------------------------------------------------------------------

fn run_single(args: &Args) -> ExitCode {
    let text = match std::fs::read_to_string(&args.input) {
        Ok(t) => t,
        Err(e) => return error_line("io", &format!("cannot read {}: {e}", args.input)),
    };
    let formula = match dimacs::parse(&text) {
        Ok(f) => f,
        Err(e) => return error_line("parse", &format!("{}: {e}", args.input)),
    };
    eprintln!(
        "weaverc: {} — {} variables, {} clauses",
        args.input,
        formula.num_vars(),
        formula.num_clauses()
    );

    let mut params = FpqaParams::default();
    if let Some(f) = args.ccz_fidelity {
        params = params.with_ccz_fidelity(f);
    }
    let options = CodegenOptions {
        compression: args.compression,
        parallel_shuttling: args.parallel_shuttling,
        dsatur: args.dsatur,
        qaoa: QaoaParams::single(args.gamma, args.beta),
        measure: true,
        ..CodegenOptions::default()
    };
    let weaver = Weaver::new().with_fpqa_params(params).with_options(options);

    match args.target.as_str() {
        "fpqa" => {
            let result = weaver.compile_fpqa(&formula);
            eprintln!(
                "weaverc: compiled in {:.4} s — {} pulses, {} motion ops, {} colors",
                result.metrics.compilation_seconds,
                result.metrics.pulses,
                result.metrics.motion_ops,
                result.compiled.coloring.num_colors,
            );
            eprintln!(
                "weaverc: estimated execution {:.4} s, EPS {:.3e}",
                result.metrics.execution_micros * 1e-6,
                result.metrics.eps
            );
            if args.check {
                let report = weaver.verify(&result, &formula);
                if report.passed() {
                    eprintln!(
                        "weaverc: wChecker PASS ({} pulses, {} motions checked)",
                        report.pulses_checked, report.motions_checked
                    );
                } else {
                    for e in &report.errors {
                        eprintln!("weaverc:   {e}");
                    }
                    return error_line(
                        "check",
                        &format!(
                            "wChecker FAIL with {} finding{} ({})",
                            report.errors.len(),
                            if report.errors.len() == 1 { "" } else { "s" },
                            args.input
                        ),
                    );
                }
            }
            let qasm = weaver::wqasm::print(&result.compiled.program);
            write_output(&args.out, &qasm)
        }
        "superconducting" | "sc" => {
            let coupling = CouplingMap::ibm_washington();
            if formula.num_vars() > coupling.num_qubits() {
                return error_line(
                    "compile",
                    &format!(
                        "{} variables exceed the 127-qubit backend",
                        formula.num_vars()
                    ),
                );
            }
            let result = weaver.compile_superconducting(&formula, &coupling);
            eprintln!(
                "weaverc: compiled in {:.4} s — {} gates, {} SWAPs inserted",
                result.metrics.compilation_seconds, result.metrics.pulses, result.swap_count
            );
            eprintln!(
                "weaverc: estimated execution {:.4} s, EPS {:.3e}",
                result.metrics.execution_micros * 1e-6,
                result.metrics.eps
            );
            let program = weaver::wqasm::convert::circuit_to_program(&result.circuit);
            let qasm = weaver::wqasm::print(&program);
            write_output(&args.out, &qasm)
        }
        other => error_line(
            "usage",
            &format!("unknown target `{other}` (use fpqa or superconducting)"),
        ),
    }
}

fn write_output(out: &Option<String>, qasm: &str) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, qasm) {
                return error_line("io", &format!("cannot write {path}: {e}"));
            }
            eprintln!("weaverc: wrote {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{qasm}");
            ExitCode::SUCCESS
        }
    }
}
