//! `weaverc` — command-line front end for the Weaver retargetable compiler.
//!
//! ```text
//! weaverc <input.cnf> [--target fpqa|superconducting] [--out file.qasm]
//!         [--no-compression] [--no-parallel-shuttling] [--greedy-coloring]
//!         [--ccz-fidelity F] [--gamma G --beta B] [--check] [--metrics]
//! ```
//!
//! Reads a DIMACS CNF Max-3SAT instance (SATLIB format), compiles it for
//! the chosen backend, prints metrics, and optionally writes the compiled
//! wQasm program and runs the wChecker.

use std::process::ExitCode;
use weaver::core::{CodegenOptions, Weaver};
use weaver::fpqa::FpqaParams;
use weaver::sat::{dimacs, qaoa::QaoaParams};
use weaver::superconducting::CouplingMap;

struct Args {
    input: String,
    target: String,
    out: Option<String>,
    compression: bool,
    parallel_shuttling: bool,
    dsatur: bool,
    ccz_fidelity: Option<f64>,
    gamma: f64,
    beta: f64,
    check: bool,
}

fn usage() -> &'static str {
    "usage: weaverc <input.cnf> [--target fpqa|superconducting] [--out file.qasm]\n\
     \x20              [--no-compression] [--no-parallel-shuttling] [--greedy-coloring]\n\
     \x20              [--ccz-fidelity F] [--gamma G] [--beta B] [--check]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        target: "fpqa".to_string(),
        out: None,
        compression: true,
        parallel_shuttling: true,
        dsatur: true,
        ccz_fidelity: None,
        gamma: 0.7,
        beta: 0.3,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("missing value for {flag}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => args.target = value(&mut it, "--target")?,
            "--out" => args.out = Some(value(&mut it, "--out")?),
            "--no-compression" => args.compression = false,
            "--no-parallel-shuttling" => args.parallel_shuttling = false,
            "--greedy-coloring" => args.dsatur = false,
            "--ccz-fidelity" => {
                args.ccz_fidelity = Some(
                    value(&mut it, "--ccz-fidelity")?
                        .parse()
                        .map_err(|e| format!("bad --ccz-fidelity: {e}"))?,
                )
            }
            "--gamma" => {
                args.gamma = value(&mut it, "--gamma")?
                    .parse()
                    .map_err(|e| format!("bad --gamma: {e}"))?
            }
            "--beta" => {
                args.beta = value(&mut it, "--beta")?
                    .parse()
                    .map_err(|e| format!("bad --beta: {e}"))?
            }
            "--check" => args.check = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if args.input.is_empty() {
        return Err(usage().to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&args.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("weaverc: cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let formula = match dimacs::parse(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("weaverc: {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "weaverc: {} — {} variables, {} clauses",
        args.input,
        formula.num_vars(),
        formula.num_clauses()
    );

    let mut params = FpqaParams::default();
    if let Some(f) = args.ccz_fidelity {
        params = params.with_ccz_fidelity(f);
    }
    let options = CodegenOptions {
        compression: args.compression,
        parallel_shuttling: args.parallel_shuttling,
        dsatur: args.dsatur,
        qaoa: QaoaParams::single(args.gamma, args.beta),
        measure: true,
        ..CodegenOptions::default()
    };
    let weaver = Weaver::new().with_fpqa_params(params).with_options(options);

    match args.target.as_str() {
        "fpqa" => {
            let result = weaver.compile_fpqa(&formula);
            eprintln!(
                "weaverc: compiled in {:.4} s — {} pulses, {} motion ops, {} colors",
                result.metrics.compilation_seconds,
                result.metrics.pulses,
                result.metrics.motion_ops,
                result.compiled.coloring.num_colors,
            );
            eprintln!(
                "weaverc: estimated execution {:.4} s, EPS {:.3e}",
                result.metrics.execution_micros * 1e-6,
                result.metrics.eps
            );
            if args.check {
                let report = weaver.verify(&result, &formula);
                if report.passed() {
                    eprintln!(
                        "weaverc: wChecker PASS ({} pulses, {} motions checked)",
                        report.pulses_checked, report.motions_checked
                    );
                } else {
                    eprintln!("weaverc: wChecker FAIL:");
                    for e in &report.errors {
                        eprintln!("  {e}");
                    }
                    return ExitCode::FAILURE;
                }
            }
            let qasm = weaver::wqasm::print(&result.compiled.program);
            match &args.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, qasm) {
                        eprintln!("weaverc: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("weaverc: wrote {path}");
                }
                None => print!("{qasm}"),
            }
        }
        "superconducting" | "sc" => {
            let coupling = CouplingMap::ibm_washington();
            if formula.num_vars() > coupling.num_qubits() {
                eprintln!(
                    "weaverc: {} variables exceed the 127-qubit backend",
                    formula.num_vars()
                );
                return ExitCode::FAILURE;
            }
            let result = weaver.compile_superconducting(&formula, &coupling);
            eprintln!(
                "weaverc: compiled in {:.4} s — {} gates, {} SWAPs inserted",
                result.metrics.compilation_seconds, result.metrics.pulses, result.swap_count
            );
            eprintln!(
                "weaverc: estimated execution {:.4} s, EPS {:.3e}",
                result.metrics.execution_micros * 1e-6,
                result.metrics.eps
            );
            let program = weaver::wqasm::convert::circuit_to_program(&result.circuit);
            let qasm = weaver::wqasm::print(&program);
            match &args.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, qasm) {
                        eprintln!("weaverc: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("weaverc: wrote {path}");
                }
                None => print!("{qasm}"),
            }
        }
        other => {
            eprintln!("weaverc: unknown target `{other}` (use fpqa or superconducting)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
