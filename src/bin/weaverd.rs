//! `weaverd` — the long-lived Weaver compile daemon.
//!
//! ```text
//! weaverd --listen unix:/run/weaver.sock | tcp:host:port
//!         [--jobs N] [--queue-bound N] [--cache-dir dir] [--no-cache]
//!         [--panic-verb]
//! ```
//!
//! Wraps [`weaver::engine::server::Server`]: compile jobs arrive over a
//! length-prefixed JSON protocol (`weaverc submit --server <addr>` is the
//! client), run on the engine's work-stealing pool, and stream back as
//! they finish, with the in-memory LRU and the paged disk store staying
//! hot across requests. SIGTERM or SIGINT (or a client `shutdown` verb)
//! drains gracefully: queued jobs finish, responses flush, the socket is
//! released, and the process exits 0.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use weaver::engine::server::{ListenAddr, Server, ServerConfig};
use weaver::engine::{CacheConfig, EngineConfig};

/// Shutdown flag shared with the signal handler, which may only do
/// async-signal-safe work: one relaxed load and one atomic store.
static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_signal(_signum: i32) {
    if let Some(flag) = SHUTDOWN.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Installs `on_signal` for SIGTERM and SIGINT through the libc `signal`
/// binding (libc is already linked by std; no crate dependency needed).
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

struct Args {
    listen: ListenAddr,
    jobs: usize,
    queue_bound: usize,
    cache_dir: Option<String>,
    use_cache: bool,
    panic_verb: bool,
}

fn usage() -> &'static str {
    "usage: weaverd --listen unix:<path>|tcp:<host:port>\n\
     \x20      [--jobs N] [--queue-bound N] [--cache-dir dir] [--no-cache]\n\
     \x20      [--panic-verb]"
}

fn parse_args() -> Result<Args, String> {
    let mut listen = None;
    let mut args = Args {
        listen: ListenAddr::Tcp(String::new()), // replaced below
        jobs: 0,
        queue_bound: 256,
        cache_dir: None,
        use_cache: true,
        panic_verb: false,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("missing value for {flag}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => listen = Some(ListenAddr::parse(&value(&mut it, "--listen")?)?),
            "--jobs" => {
                args.jobs = value(&mut it, "--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--queue-bound" => {
                args.queue_bound = value(&mut it, "--queue-bound")?
                    .parse()
                    .map_err(|e| format!("bad --queue-bound: {e}"))?
            }
            "--cache-dir" => args.cache_dir = Some(value(&mut it, "--cache-dir")?),
            "--no-cache" => args.use_cache = false,
            // Test instrumentation: enables the `panic` verb so the
            // connection catch-unwind guard can be exercised end to end.
            "--panic-verb" => args.panic_verb = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    args.listen = listen.ok_or_else(|| format!("--listen is required\n{}", usage()))?;
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        listen: args.listen,
        engine: EngineConfig {
            jobs: args.jobs,
            cache: CacheConfig {
                disk_dir: args.cache_dir.as_ref().map(Into::into),
                ..CacheConfig::default()
            },
            use_cache: args.use_cache,
        },
        queue_bound: args.queue_bound,
        panic_verb: args.panic_verb,
    };
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("weaverd: error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("weaverd: listening on {}", server.local_addr());
    let _ = SHUTDOWN.set(server.shutdown_flag());
    install_signal_handlers();
    match server.serve() {
        Ok(()) => {
            eprintln!("weaverd: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("weaverd: error: {e}");
            ExitCode::FAILURE
        }
    }
}
